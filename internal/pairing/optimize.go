package pairing

import (
	"math/big"
	"sync"
)

// This file holds performance extensions that go beyond what the paper's
// evaluation used: a multi-pairing product that shares one final
// exponentiation across Miller loops, and precomputed-table exponentiation
// (a fixed-base comb for the generator, and per-base tables for hot public
// keys). The scheme implementations use the plain operations so their cost
// profiles match the paper; these variants are exercised by the ablation
// benchmarks and are available to API users who want the speed.
//
// Both table kinds keep two representations: limb-native Montgomery combs
// (affine entries, mixed-addition evaluation, zero heap allocations per
// exponentiation) used when the Montgomery kernel is active, and the
// original big.Int Jacobian tables as the fallback for the projective and
// reference kernels and for moduli wider than fpMaxLimbs. Each side is
// built lazily under its own sync.Once, so kernel flips mid-lifetime stay
// correct and concurrent use stays safe.

// PairProd computes Π_i e(a_i, b_i) with a single final exponentiation:
// the Miller-loop values multiply in F_q² before the (q²−1)/r power, which
// is sound because the final exponentiation is a group homomorphism.
func (p *Params) PairProd(as, bs []*G) (*GT, error) {
	if len(as) != len(bs) {
		return nil, ErrBadEncoding
	}
	acc := fp2One()
	for i := range as {
		if as[i].p != p || bs[i].p != p {
			return nil, ErrMixedParams
		}
		if as[i].pt.inf || bs[i].pt.inf {
			continue
		}
		acc = p.fp2Mul(acc, p.millerLoop(as[i].pt, bs[i].pt))
	}
	switch p.activeKernel() {
	case KernelReference:
		return &GT{p: p, v: p.finalExpReference(acc)}, nil
	case KernelMontgomery:
		c := p.fpc
		var m fp2m
		c.fp2mFromFp2(&m, acc)
		u := p.finalExpMont(&m)
		return &GT{p: p, v: c.fp2mToFp2(&u)}, nil
	default:
		return &GT{p: p, v: p.finalExp(acc)}, nil
	}
}

// fixedBaseWindow is the window width in bits for precomputed tables.
const fixedBaseWindow = 4

// combEntriesPerRow is the number of stored multiples per window position:
// w·2^(4j)·base for w = 1..15. The zero window contributes nothing, so it
// is not stored.
const combEntriesPerRow = 1<<fixedBaseWindow - 1

// montComb is a limb-native windowed comb: rows[j][w-1] holds the affine
// Montgomery-form point w·2^(fixedBaseWindow·j)·base. Because the base has
// prime order R and 0 < w·2^(4j) mod R < R, no entry is ever the point at
// infinity, so entries need no infinity flag and evaluation is pure mixed
// addition.
type montComb struct {
	rows [][]montAffine
}

// combWindows is the number of window positions needed to cover any scalar
// reduced mod R.
func (p *Params) combWindows() int {
	return (p.R.BitLen() + fixedBaseWindow - 1) / fixedBaseWindow
}

// montJacBatchToAffine normalizes a batch of non-infinity Jacobian points
// with a single shared inversion (Montgomery's trick via batchInv).
func (c *fpContext) montJacBatchToAffine(js []montJac, out []montAffine) {
	zs := make([]fpElement, len(js))
	ptrs := make([]*fpElement, len(js))
	for i := range js {
		zs[i] = js[i].z
		ptrs[i] = &zs[i]
	}
	c.batchInv(ptrs)
	for i := range js {
		var zi2, zi3 fpElement
		c.mul(&zi2, &zs[i], &zs[i])
		c.mul(&zi3, &zi2, &zs[i])
		c.mul(&out[i].x, &js[i].x, &zi2)
		c.mul(&out[i].y, &js[i].y, &zi3)
	}
}

// buildMontComb precomputes the comb for base (affine, not infinity).
// Cost: 4·(windows−1) Jacobian doublings for the spine 2^(4j)·base,
// 14·windows mixed additions for the row chains, and two batch
// normalizations — about the price of one plain exponentiation, amortized
// by the table caches.
func (p *Params) buildMontComb(base point) *montComb {
	c := p.fpc
	windows := p.combWindows()
	chain := make([]montJac, windows)
	a0 := c.montFromPoint(base)
	chain[0] = montJac{x: a0.x, y: a0.y, z: c.one}
	for j := 1; j < windows; j++ {
		chain[j] = chain[j-1]
		for d := 0; d < fixedBaseWindow; d++ {
			c.montJacDouble(&chain[j])
		}
	}
	spine := make([]montAffine, windows)
	c.montJacBatchToAffine(chain, spine)

	entries := make([]montJac, windows*combEntriesPerRow)
	for j := 0; j < windows; j++ {
		acc := montJac{x: spine[j].x, y: spine[j].y, z: c.one}
		entries[j*combEntriesPerRow] = acc
		for w := 2; w <= combEntriesPerRow; w++ {
			c.montJacAddAffine(&acc, &spine[j])
			entries[j*combEntriesPerRow+w-1] = acc
		}
	}
	flat := make([]montAffine, len(entries))
	c.montJacBatchToAffine(entries, flat)

	mc := &montComb{rows: make([][]montAffine, windows)}
	for j := 0; j < windows; j++ {
		mc.rows[j] = flat[j*combEntriesPerRow : (j+1)*combEntriesPerRow : (j+1)*combEntriesPerRow]
	}
	return mc
}

// combExpMont is the zero-allocation evaluation core: one mixed addition
// per nonzero window of kk (already reduced mod R), then a single inline
// normalization. Returns false when the result is the point at infinity
// (kk = 0). Pinned at 0 allocs/op by TestCombExpMontAllocs.
func (p *Params) combExpMont(dst *montAffine, mc *montComb, kk *big.Int) bool {
	c := p.fpc
	var acc montJac
	words := kk.Bits()
	bitLen := kk.BitLen()
	for j := 0; j*fixedBaseWindow < bitLen; j++ {
		if w := extractWindow(words, j*fixedBaseWindow); w != 0 {
			c.montJacAddAffine(&acc, &mc.rows[j][w-1])
		}
	}
	if c.montJacIsInf(&acc) {
		return false
	}
	var zi, zi2, zi3 fpElement
	c.inv(&zi, &acc.z)
	c.mul(&zi2, &zi, &zi)
	c.mul(&zi3, &zi2, &zi)
	c.mul(&dst.x, &acc.x, &zi2)
	c.mul(&dst.y, &acc.y, &zi3)
	return true
}

// combPointMont converts a normalized comb result back to a canonical
// big.Int point. This is the only allocation site on the Montgomery path.
func (p *Params) combPointMont(out *montAffine) *G {
	c := p.fpc
	return &G{p: p, pt: point{x: c.toBig(&out.x), y: c.toBig(&out.y)}}
}

// fixedBaseTable holds the generator's precomputed window tables, one
// representation per kernel family, each built lazily on first use.
type fixedBaseTable struct {
	once sync.Once
	rows [][]point // rows[windowIdx][w] = w·2^(4j)·gen, big.Int affine

	montOnce sync.Once
	mont     *montComb
}

var fixedTables sync.Map // *Params → *fixedBaseTable

func (p *Params) fixedTable() *fixedBaseTable {
	v, _ := fixedTables.LoadOrStore(p, &fixedBaseTable{})
	return v.(*fixedBaseTable)
}

func (t *fixedBaseTable) bigRows(p *Params) [][]point {
	t.once.Do(func() {
		windows := p.combWindows()
		t.rows = make([][]point, windows)
		base := p.gen.clone()
		for j := 0; j < windows; j++ {
			row := make([]point, 1<<fixedBaseWindow)
			row[0] = infinity()
			for w := 1; w < 1<<fixedBaseWindow; w++ {
				row[w] = p.add(row[w-1], base)
			}
			t.rows[j] = row
			// Advance base by 2^window doublings.
			for d := 0; d < fixedBaseWindow; d++ {
				base = p.double(base)
			}
		}
	})
	return t.rows
}

func (t *fixedBaseTable) montRows(p *Params) *montComb {
	t.montOnce.Do(func() {
		t.mont = p.buildMontComb(p.gen)
	})
	return t.mont
}

// FixedBaseExp computes g^k for the generator g using the precomputed
// window table: one point addition per window instead of a double-and-add
// pass, with a single modular inversion at the final normalization. On the
// Montgomery kernel the additions run limb-native over affine table
// entries; otherwise they accumulate big.Int Jacobian coordinates through
// a per-call scratch. k is reduced mod R. All kernels return bit-identical
// points.
func (p *Params) FixedBaseExp(k *big.Int) *G {
	kk := new(big.Int).Mod(k, p.R)
	t := p.fixedTable()
	if p.activeKernel() == KernelMontgomery {
		var out montAffine
		if !p.combExpMont(&out, t.montRows(p), kk) {
			return p.OneG()
		}
		return p.combPointMont(&out)
	}
	rows := t.bigRows(p)
	s := newScratch()
	acc := jacInfinity()
	words := kk.Bits()
	bitLen := kk.BitLen()
	for j := 0; j*fixedBaseWindow < bitLen || j == 0; j++ {
		w := extractWindow(words, j*fixedBaseWindow)
		if w != 0 {
			p.jacAddAffineTo(&acc, rows[j][w], s)
		}
	}
	return &G{p: p, pt: p.toAffine(acc)}
}

// extractWindow reads fixedBaseWindow bits starting at bit offset from the
// little-endian word representation.
func extractWindow(words []big.Word, offset int) int {
	const wordBits = 32 << (^big.Word(0) >> 63) // 32 or 64
	word := offset / wordBits
	if word >= len(words) {
		return 0
	}
	shift := offset % wordBits
	v := uint(words[word] >> shift)
	if shift+fixedBaseWindow > wordBits && word+1 < len(words) {
		v |= uint(words[word+1]) << (wordBits - shift)
	}
	return int(v & (1<<fixedBaseWindow - 1))
}

// ExpTable is the arbitrary-base analogue of the generator's fixed-base
// table. On the Montgomery kernel it is the same windowed comb layout as
// the generator table, so each exponentiation costs one mixed addition per
// nonzero window (≤ ⌈|R|/4⌉ of them) plus one inversion; on the big.Int
// kernels it is the doubling chain 2^i·P, costing one mixed addition per
// set bit (~|R|/2). Building either side costs about one plain
// exponentiation, so a table pays for itself from the second use; the
// engine layer caches tables for hot bases (e.g. attribute public keys,
// which owners exponentiate once per stored ciphertext during a
// revocation).
type ExpTable struct {
	p    *Params
	inf  bool
	base point

	bigOnce sync.Once
	pows    []point // pows[i] = 2^i · base, affine

	montOnce sync.Once
	mont     *montComb
}

// PrepareExp builds the exponentiation table for g in the representation
// matching the active kernel; the other representation is built lazily if
// the kernel changes under the table.
func (p *Params) PrepareExp(g *G) *ExpTable {
	t := &ExpTable{p: p, inf: g.pt.inf, base: g.pt}
	if t.inf {
		return t
	}
	if p.activeKernel() == KernelMontgomery {
		t.montTable()
	} else {
		t.bigPows()
	}
	return t
}

func (t *ExpTable) bigPows() []point {
	t.bigOnce.Do(func() {
		p := t.p
		n := p.R.BitLen()
		t.pows = make([]point, n)
		cur := t.base.clone()
		for i := 0; i < n; i++ {
			t.pows[i] = cur
			cur = p.double(cur)
		}
	})
	return t.pows
}

func (t *ExpTable) montTable() *montComb {
	t.montOnce.Do(func() {
		t.mont = t.p.buildMontComb(t.base)
	})
	return t.mont
}

// Exp computes base^k using the table. k is normalized mod R before any
// table walk, so zero, negative, and oversized scalars touch at most
// ⌈|R|/4⌉ comb rows (or |R| doubling-chain rows on the big.Int path); the
// result is bit-identical to base.Exp(k) on every kernel.
func (t *ExpTable) Exp(k *big.Int) *G {
	p := t.p
	if t.inf {
		return p.OneG()
	}
	kk := new(big.Int).Mod(k, p.R)
	if p.activeKernel() == KernelMontgomery {
		var out montAffine
		if !p.combExpMont(&out, t.montTable(), kk) {
			return p.OneG()
		}
		return p.combPointMont(&out)
	}
	pows := t.bigPows()
	s := newScratch()
	acc := jacInfinity()
	for i := 0; i < kk.BitLen(); i++ {
		if kk.Bit(i) == 1 {
			p.jacAddAffineTo(&acc, pows[i], s)
		}
	}
	return &G{p: p, pt: p.toAffine(acc)}
}
