package pairing

import (
	"math/big"
	"sync"
)

// This file holds performance extensions that go beyond what the paper's
// evaluation used: a multi-pairing product that shares one final
// exponentiation across Miller loops, and fixed-base exponentiation of the
// generator with a precomputed window table. The scheme implementations use
// the plain operations so their cost profiles match the paper; these
// variants are exercised by the ablation benchmarks and are available to
// API users who want the speed.

// PairProd computes Π_i e(a_i, b_i) with a single final exponentiation:
// the Miller-loop values multiply in F_q² before the (q²−1)/r power, which
// is sound because the final exponentiation is a group homomorphism.
func (p *Params) PairProd(as, bs []*G) (*GT, error) {
	if len(as) != len(bs) {
		return nil, ErrBadEncoding
	}
	acc := fp2One()
	for i := range as {
		if as[i].p != p || bs[i].p != p {
			return nil, ErrMixedParams
		}
		if as[i].pt.inf || bs[i].pt.inf {
			continue
		}
		acc = p.fp2Mul(acc, p.millerLoop(as[i].pt, bs[i].pt))
	}
	switch p.activeKernel() {
	case KernelReference:
		return &GT{p: p, v: p.finalExpReference(acc)}, nil
	case KernelMontgomery:
		c := p.fpc
		var m fp2m
		c.fp2mFromFp2(&m, acc)
		u := p.finalExpMont(&m)
		return &GT{p: p, v: c.fp2mToFp2(&u)}, nil
	default:
		return &GT{p: p, v: p.finalExp(acc)}, nil
	}
}

// fixedBaseWindow is the window width in bits for the generator table.
const fixedBaseWindow = 4

// fixedBaseTable holds (w · 2^(windowIdx·window)) · gen for every window
// position and window value, built lazily on first use.
type fixedBaseTable struct {
	once sync.Once
	rows [][]point // rows[windowIdx][w]
}

var fixedTables sync.Map // *Params → *fixedBaseTable

func (p *Params) fixedTable() *fixedBaseTable {
	v, _ := fixedTables.LoadOrStore(p, &fixedBaseTable{})
	t := v.(*fixedBaseTable)
	t.once.Do(func() {
		windows := (p.R.BitLen() + fixedBaseWindow - 1) / fixedBaseWindow
		t.rows = make([][]point, windows)
		base := p.gen.clone()
		for j := 0; j < windows; j++ {
			row := make([]point, 1<<fixedBaseWindow)
			row[0] = infinity()
			for w := 1; w < 1<<fixedBaseWindow; w++ {
				row[w] = p.add(row[w-1], base)
			}
			t.rows[j] = row
			// Advance base by 2^window doublings.
			for d := 0; d < fixedBaseWindow; d++ {
				base = p.double(base)
			}
		}
	})
	return t
}

// FixedBaseExp computes g^k for the generator g using the precomputed
// window table: one point addition per window instead of a double-and-add
// pass. The additions accumulate in Jacobian coordinates through a per-call
// scratch, so the whole exponentiation pays a single modular inversion at
// the final normalization. k is reduced mod R.
func (p *Params) FixedBaseExp(k *big.Int) *G {
	kk := new(big.Int).Mod(k, p.R)
	t := p.fixedTable()
	s := newScratch()
	acc := jacInfinity()
	words := kk.Bits()
	bitLen := kk.BitLen()
	for j := 0; j*fixedBaseWindow < bitLen || j == 0; j++ {
		w := extractWindow(words, j*fixedBaseWindow)
		if w != 0 {
			p.jacAddAffineTo(&acc, t.rows[j][w], s)
		}
	}
	return &G{p: p, pt: p.toAffine(acc)}
}

// extractWindow reads fixedBaseWindow bits starting at bit offset from the
// little-endian word representation.
func extractWindow(words []big.Word, offset int) int {
	const wordBits = 32 << (^big.Word(0) >> 63) // 32 or 64
	word := offset / wordBits
	if word >= len(words) {
		return 0
	}
	shift := offset % wordBits
	v := uint(words[word] >> shift)
	if shift+fixedBaseWindow > wordBits && word+1 < len(words) {
		v |= uint(words[word+1]) << (wordBits - shift)
	}
	return int(v & (1<<fixedBaseWindow - 1))
}

// ExpTable is the arbitrary-base analogue of the generator's fixed-base
// table: the doubling chain 2^i·P of one base, precomputed once. Each
// subsequent exponentiation with that base then costs only the mixed
// additions for the set bits of the exponent (~|r|/2 of them) instead of a
// full double-and-add ladder — roughly half the work. Building the table
// costs about one plain exponentiation, so it pays for itself from the
// second use; the engine layer caches tables for hot bases (e.g. attribute
// public keys, which owners exponentiate once per stored ciphertext during
// a revocation).
type ExpTable struct {
	p    *Params
	inf  bool
	pows []point // pows[i] = 2^i · base, affine
}

// PrepareExp builds the doubling table for g.
func (p *Params) PrepareExp(g *G) *ExpTable {
	t := &ExpTable{p: p, inf: g.pt.inf}
	if t.inf {
		return t
	}
	n := p.R.BitLen()
	t.pows = make([]point, n)
	cur := g.pt.clone()
	for i := 0; i < n; i++ {
		t.pows[i] = cur
		cur = p.double(cur)
	}
	return t
}

// Exp computes base^k using the table. k is normalized mod R before any
// table walk, so zero, negative, and oversized scalars touch at most
// |R| table rows; the result is bit-identical to base.Exp(k).
func (t *ExpTable) Exp(k *big.Int) *G {
	p := t.p
	if t.inf {
		return p.OneG()
	}
	kk := new(big.Int).Mod(k, p.R)
	s := newScratch()
	acc := jacInfinity()
	for i := 0; i < kk.BitLen(); i++ {
		if kk.Bit(i) == 1 {
			p.jacAddAffineTo(&acc, t.pows[i], s)
		}
	}
	return &G{p: p, pt: p.toAffine(acc)}
}
