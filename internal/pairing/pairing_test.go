package pairing

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// freshParams generates small parameters for tests that need a brand-new
// parameter set (most tests use the shared Test() parameters instead).
func freshParams(t *testing.T) *Params {
	t.Helper()
	p, err := GenerateParams(40, 80, rand.Reader)
	if err != nil {
		t.Fatalf("GenerateParams: %v", err)
	}
	return p
}

func TestGenerateParamsValid(t *testing.T) {
	p := freshParams(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// q + 1 = h·r and q ≡ 3 mod 4 are re-checked by Validate; check sizes.
	if got := p.R.BitLen(); got != 40 {
		t.Errorf("R bit length = %d, want 40", got)
	}
	if got := p.Q.BitLen(); got < 72 || got > 88 {
		t.Errorf("Q bit length = %d, want ≈80", got)
	}
}

func TestGeneratorOnCurveAndOrder(t *testing.T) {
	p := freshParams(t)
	g := p.Generator()
	if !p.onCurve(g.pt) {
		t.Fatal("generator not on curve")
	}
	if !p.hasOrderDividingR(g.pt) {
		t.Fatal("r·g ≠ ∞ (generator order does not divide r)")
	}
	if g.IsOne() {
		t.Fatal("generator is the identity")
	}
}

func TestPairingNonDegenerate(t *testing.T) {
	p := freshParams(t)
	g := p.Generator()
	e := p.MustPair(g, g)
	if e.IsOne() {
		t.Fatal("e(g,g) = 1: pairing degenerate")
	}
	if !p.fp2Exp(e.v, p.R).isOne() {
		t.Fatal("e(g,g)^r ≠ 1: pairing value outside order-r subgroup")
	}
}

func TestPairingBilinear(t *testing.T) {
	p := freshParams(t)
	g := p.Generator()
	for i := 0; i < 8; i++ {
		a, err := p.RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		lhs := p.MustPair(g.Exp(a), g.Exp(b))
		ab := new(big.Int).Mul(a, b)
		rhs := p.MustPair(g, g).Exp(ab)
		if !lhs.Equal(rhs) {
			t.Fatalf("iteration %d: e(g^a, g^b) ≠ e(g,g)^(ab)", i)
		}
	}
}

func TestPairingDistributesOverMul(t *testing.T) {
	p := freshParams(t)
	g := p.Generator()
	a, _ := p.RandomScalar(rand.Reader)
	b, _ := p.RandomScalar(rand.Reader)
	c, _ := p.RandomScalar(rand.Reader)
	ga, gb, gc := g.Exp(a), g.Exp(b), g.Exp(c)
	lhs := p.MustPair(ga.Mul(gb), gc)
	rhs := p.MustPair(ga, gc).Mul(p.MustPair(gb, gc))
	if !lhs.Equal(rhs) {
		t.Fatal("e(g^a·g^b, g^c) ≠ e(g^a,g^c)·e(g^b,g^c)")
	}
}

func TestPairingSymmetric(t *testing.T) {
	p := freshParams(t)
	g := p.Generator()
	a, _ := p.RandomScalar(rand.Reader)
	b, _ := p.RandomScalar(rand.Reader)
	if !p.MustPair(g.Exp(a), g.Exp(b)).Equal(p.MustPair(g.Exp(b), g.Exp(a))) {
		t.Fatal("pairing not symmetric")
	}
}

func TestPairingIdentity(t *testing.T) {
	p := freshParams(t)
	g := p.Generator()
	if !p.MustPair(p.OneG(), g).IsOne() {
		t.Fatal("e(1, g) ≠ 1")
	}
	if !p.MustPair(g, p.OneG()).IsOne() {
		t.Fatal("e(g, 1) ≠ 1")
	}
}

func TestPairInverse(t *testing.T) {
	p := freshParams(t)
	g := p.Generator()
	a, _ := p.RandomScalar(rand.Reader)
	e1 := p.MustPair(g.Exp(a).Inv(), g)
	e2 := p.MustPair(g.Exp(a), g).Inv()
	if !e1.Equal(e2) {
		t.Fatal("e(g^-a, g) ≠ e(g^a, g)^-1")
	}
}

func TestPairRejectsMixedParams(t *testing.T) {
	p1 := freshParams(t)
	p2 := freshParams(t)
	if _, err := p1.Pair(p1.Generator(), p2.Generator()); err == nil {
		t.Fatal("Pair accepted elements from different parameter sets")
	}
}

func TestHashToGInSubgroup(t *testing.T) {
	p := freshParams(t)
	for _, input := range []string{"", "a", "hello world", "AID1:doctor"} {
		h, err := p.HashToG([]byte(input))
		if err != nil {
			t.Fatalf("HashToG(%q): %v", input, err)
		}
		if !p.hasOrderDividingR(h.pt) {
			t.Fatalf("HashToG(%q) not in order-r subgroup", input)
		}
	}
	// Determinism.
	h1, _ := p.HashToG([]byte("x"))
	h2, _ := p.HashToG([]byte("x"))
	if !h1.Equal(h2) {
		t.Fatal("HashToG not deterministic")
	}
	h3, _ := p.HashToG([]byte("y"))
	if h1.Equal(h3) {
		t.Fatal("HashToG collision on distinct inputs (overwhelmingly unlikely)")
	}
}

func TestHashToScalarRangeAndDeterminism(t *testing.T) {
	p := freshParams(t)
	seen := make(map[string]bool)
	for _, input := range []string{"", "a", "b", "doctor", "nurse"} {
		k := p.HashToScalar([]byte(input))
		if k.Sign() < 0 || k.Cmp(p.R) >= 0 {
			t.Fatalf("HashToScalar(%q) out of range", input)
		}
		seen[k.String()] = true
		if k2 := p.HashToScalar([]byte(input)); k2.Cmp(k) != 0 {
			t.Fatalf("HashToScalar(%q) not deterministic", input)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("HashToScalar collisions among 5 inputs: %d distinct", len(seen))
	}
}

func TestExportRoundTrip(t *testing.T) {
	p := freshParams(t)
	q, r, h, gx, gy := p.Export()
	p2, err := NewParams(q, r, h, gx, gy)
	if err != nil {
		t.Fatalf("NewParams round-trip: %v", err)
	}
	if !p2.hasOrderDividingR(p2.gen) {
		t.Fatal("round-tripped generator wrong order")
	}
	if p2.Q.Cmp(p.Q) != 0 || p2.R.Cmp(p.R) != 0 || p2.H.Cmp(p.H) != 0 {
		t.Fatal("round-tripped parameters differ")
	}
}

func TestNewParamsRejectsBadInput(t *testing.T) {
	p := freshParams(t)
	q, r, h, gx, gy := p.Export()
	cases := []struct {
		name            string
		q, r, h, gx, gy string
	}{
		{"garbage", "xyz", r, h, gx, gy},
		{"wrong cofactor", q, r, "8", gx, gy},
		{"off-curve generator", q, r, h, gx, "1"},
		{"composite order", q, new(big.Int).Add(mustInt(r), big.NewInt(1)).String(), h, gx, gy},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewParams(tc.q, tc.r, tc.h, tc.gx, tc.gy); err == nil {
				t.Fatal("NewParams accepted invalid input")
			}
		})
	}
}

func mustInt(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic("bad int in test")
	}
	return v
}
