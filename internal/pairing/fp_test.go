package pairing

import (
	"math/big"
	"math/rand"
	"testing"
)

// fpTestFields returns named fpContexts to exercise both limb widths the
// shipped parameter sets use: 2 limbs (96-bit test field) and 9 limbs
// (513-bit default field).
func fpTestFields(t *testing.T) map[string]*fpContext {
	t.Helper()
	fields := map[string]*fpContext{
		"test":    Test().fpc,
		"default": Default().fpc,
	}
	for name, c := range fields {
		if c == nil {
			t.Fatalf("%s params have no Montgomery context", name)
		}
	}
	return fields
}

// fpEdgeValues are the boundary inputs the fuzz satellite calls out: 0, 1,
// q−1, and values at and above q (which fromBig must normalize).
func fpEdgeValues(q *big.Int) []*big.Int {
	return []*big.Int{
		new(big.Int),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(q, one),
		new(big.Int).Sub(q, two),
	}
}

// TestFpRoundTrip pins the boundary conversions: toBig(fromBig(v)) = v mod q
// for canonical, oversized, and negative inputs, and the Montgomery
// constants decode to what they claim to be.
func TestFpRoundTrip(t *testing.T) {
	for name, c := range fpTestFields(t) {
		t.Run(name, func(t *testing.T) {
			if got := c.toBig(&c.one); got.Cmp(one) != 0 {
				t.Fatalf("toBig(one) = %v, want 1", got)
			}
			vals := fpEdgeValues(c.qBig)
			vals = append(vals,
				new(big.Int).Set(c.qBig),                 // ≥ q: must normalize to 0
				new(big.Int).Add(c.qBig, big.NewInt(41)), // ≥ q: must normalize
				new(big.Int).Neg(big.NewInt(13)),         // negative: must normalize
				new(big.Int).Lsh(c.qBig, 3),              // far above q
			)
			rnd := rand.New(rand.NewSource(7))
			for i := 0; i < 20; i++ {
				vals = append(vals, new(big.Int).Rand(rnd, c.qBig))
			}
			for _, v := range vals {
				var x fpElement
				c.fromBig(&x, v)
				want := new(big.Int).Mod(v, c.qBig)
				if got := c.toBig(&x); got.Cmp(want) != 0 {
					t.Fatalf("round trip of %v: got %v, want %v", v, got, want)
				}
				if (want.Sign() == 0) != c.isZero(&x) {
					t.Fatalf("isZero(%v) wrong", v)
				}
				if (want.Cmp(one) == 0) != c.isOne(&x) {
					t.Fatalf("isOne(%v) wrong", v)
				}
			}
		})
	}
}

// fpCheckOps cross-checks every fpElement operation against math/big for one
// (a, b, e) triple; shared by the differential test and the fuzz target.
func fpCheckOps(t *testing.T, c *fpContext, aBig, bBig *big.Int, e uint64) {
	t.Helper()
	q := c.qBig
	aBig = new(big.Int).Mod(aBig, q)
	bBig = new(big.Int).Mod(bBig, q)
	var a, b, z fpElement
	c.fromBig(&a, aBig)
	c.fromBig(&b, bBig)

	check := func(op string, got *fpElement, want *big.Int) {
		t.Helper()
		if g := c.toBig(got); g.Cmp(want) != 0 {
			t.Fatalf("%s(%v, %v): got %v, want %v", op, aBig, bBig, g, want)
		}
	}

	c.add(&z, &a, &b)
	check("add", &z, new(big.Int).Mod(new(big.Int).Add(aBig, bBig), q))
	c.sub(&z, &a, &b)
	check("sub", &z, new(big.Int).Mod(new(big.Int).Sub(aBig, bBig), q))
	c.neg(&z, &a)
	check("neg", &z, new(big.Int).Mod(new(big.Int).Neg(aBig), q))
	c.dbl(&z, &a)
	check("dbl", &z, new(big.Int).Mod(new(big.Int).Lsh(aBig, 1), q))
	c.mul(&z, &a, &b)
	check("mul", &z, new(big.Int).Mod(new(big.Int).Mul(aBig, bBig), q))
	c.square(&z, &a)
	check("square", &z, new(big.Int).Mod(new(big.Int).Mul(aBig, aBig), q))
	k := new(big.Int).SetUint64(e)
	c.exp(&z, &a, k)
	check("exp", &z, new(big.Int).Exp(aBig, k, q))
	c.inv(&z, &a)
	if aBig.Sign() == 0 {
		if !c.isZero(&z) {
			t.Fatalf("inv(0) ≠ 0")
		}
	} else {
		check("inv", &z, new(big.Int).ModInverse(aBig, q))
	}

	// Aliased forms: z = x op z and x op x must agree with the plain ones.
	z = a
	c.mul(&z, &z, &z)
	check("mul aliased", &z, new(big.Int).Mod(new(big.Int).Mul(aBig, aBig), q))
	z = a
	c.add(&z, &z, &b)
	check("add aliased", &z, new(big.Int).Mod(new(big.Int).Add(aBig, bBig), q))
	z = a
	c.inv(&z, &z)
	if aBig.Sign() != 0 {
		check("inv aliased", &z, new(big.Int).ModInverse(aBig, q))
	}
}

// TestFpArithMatchesBig runs the full operation cross-check on the edge
// inputs and a deterministic sample of random field elements, on both limb
// widths.
func TestFpArithMatchesBig(t *testing.T) {
	for name, c := range fpTestFields(t) {
		t.Run(name, func(t *testing.T) {
			edges := fpEdgeValues(c.qBig)
			for _, a := range edges {
				for _, b := range edges {
					fpCheckOps(t, c, a, b, 3)
				}
			}
			rnd := rand.New(rand.NewSource(42))
			iters := 40
			if name == "default" {
				iters = 12 // 513-bit Fermat inversions are the slow part
			}
			for i := 0; i < iters; i++ {
				a := new(big.Int).Rand(rnd, c.qBig)
				b := new(big.Int).Rand(rnd, c.qBig)
				fpCheckOps(t, c, a, b, rnd.Uint64()%1024)
			}
		})
	}
}

// TestFpExpLargeExponents exercises the ladder with the field-sized
// exponents the kernel actually uses (q−2 for Fermat, the cofactor H).
func TestFpExpLargeExponents(t *testing.T) {
	for name, c := range fpTestFields(t) {
		t.Run(name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(5))
			aBig := new(big.Int).Rand(rnd, c.qBig)
			var a, z fpElement
			c.fromBig(&a, aBig)
			for _, k := range []*big.Int{new(big.Int), one, c.qMinus2, new(big.Int).Sub(c.qBig, one)} {
				c.exp(&z, &a, k)
				if got, want := c.toBig(&z), new(big.Int).Exp(aBig, k, c.qBig); got.Cmp(want) != 0 {
					t.Fatalf("exp by %v: got %v, want %v", k, got, want)
				}
			}
		})
	}
}

// TestFpInvAgainstFermat pins the binary extended-GCD inverse to the
// independently-derived Fermat exponentiation x^(q−2) on edge values and
// random elements, including the inv(0) = 0 convention.
func TestFpInvAgainstFermat(t *testing.T) {
	for name, c := range fpTestFields(t) {
		t.Run(name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(31))
			cases := fpEdgeValues(c.qBig)
			for i := 0; i < 16; i++ {
				cases = append(cases, new(big.Int).Rand(rnd, c.qBig))
			}
			for _, v := range cases {
				var x, got, want fpElement
				c.fromBig(&x, v)
				c.inv(&got, &x)
				c.invFermat(&want, &x)
				if got != want {
					t.Fatalf("inv(%v): EGCD %v ≠ Fermat %v", v, c.toBig(&got), c.toBig(&want))
				}
				// Aliased form.
				got = x
				c.inv(&got, &got)
				if got != want {
					t.Fatalf("inv(%v) aliased: EGCD ≠ Fermat", v)
				}
			}
		})
	}
}

// TestFpBatchInv checks the batched inversion against per-element
// inversion, including interleaved zeros (left as zero) and the empty and
// singleton slices.
func TestFpBatchInv(t *testing.T) {
	for name, c := range fpTestFields(t) {
		t.Run(name, func(t *testing.T) {
			c.batchInv(nil) // must not panic
			rnd := rand.New(rand.NewSource(9))
			var xs []*fpElement
			var want []*big.Int
			for i := 0; i < 23; i++ {
				v := new(big.Int).Rand(rnd, c.qBig)
				if i%5 == 2 {
					v.SetInt64(0)
				}
				x := new(fpElement)
				c.fromBig(x, v)
				xs = append(xs, x)
				if v.Sign() == 0 {
					want = append(want, new(big.Int))
				} else {
					want = append(want, new(big.Int).ModInverse(v, c.qBig))
				}
			}
			c.batchInv(xs)
			for i := range xs {
				if got := c.toBig(xs[i]); got.Cmp(want[i]) != 0 {
					t.Fatalf("element %d: batch inverse ≠ ModInverse", i)
				}
			}
			// Singleton.
			v := new(big.Int).Rand(rnd, c.qBig)
			var x fpElement
			c.fromBig(&x, v)
			c.batchInv([]*fpElement{&x})
			if got := c.toBig(&x); got.Cmp(new(big.Int).ModInverse(v, c.qBig)) != 0 {
				t.Fatal("singleton batch inverse wrong")
			}
		})
	}
}

// TestNewFpContextRejects pins the fallback contract: fields wider than the
// fixed 9×64-bit width (and degenerate moduli) get no Montgomery context,
// which activeKernel turns into the projective big.Int chain.
func TestNewFpContextRejects(t *testing.T) {
	wide := new(big.Int).Lsh(one, 64*fpMaxLimbs)
	wide.Add(wide, big.NewInt(3))
	if newFpContext(wide) != nil {
		t.Fatal("context accepted a modulus wider than fpMaxLimbs")
	}
	if newFpContext(big.NewInt(10)) != nil {
		t.Fatal("context accepted an even modulus")
	}
	if newFpContext(new(big.Int)) != nil {
		t.Fatal("context accepted zero")
	}
	// Exactly at the width limit is fine.
	edge := new(big.Int).Sub(new(big.Int).Lsh(one, 64*fpMaxLimbs), one)
	for !edge.ProbablyPrime(16) {
		edge.Sub(edge, two)
	}
	c := newFpContext(edge)
	if c == nil || c.n != fpMaxLimbs {
		t.Fatal("context rejected a modulus that fits exactly")
	}
	var x fpElement
	c.fromBig(&x, big.NewInt(123456789))
	var z fpElement
	c.mul(&z, &x, &x)
	if got := c.toBig(&z); got.Cmp(new(big.Int).Mod(big.NewInt(123456789*123456789), edge)) != 0 {
		t.Fatal("arithmetic at the width limit wrong")
	}
}

// fp2CheckOps cross-checks the fp2m tower against the big.Int fp2 tower for
// one pair of elements; shared by the differential test and the fuzz target.
func fp2CheckOps(t *testing.T, p *Params, x, y fp2, e uint64) {
	t.Helper()
	c := p.fpc
	var xm, ym, zm fp2m
	c.fp2mFromFp2(&xm, x)
	c.fp2mFromFp2(&ym, y)

	check := func(op string, got *fp2m, want fp2) {
		t.Helper()
		if g := c.fp2mToFp2(got); !g.equal(want) {
			t.Fatalf("%s: montgomery tower disagrees with big.Int tower", op)
		}
	}

	c.fp2mMul(&zm, &xm, &ym)
	check("fp2mMul", &zm, p.fp2Mul(x, y))
	c.fp2mSquare(&zm, &xm)
	check("fp2mSquare", &zm, p.fp2Square(x))
	c.fp2mConj(&zm, &xm)
	check("fp2mConj", &zm, p.fp2Conj(x))
	if !x.isZero() {
		c.fp2mInv(&zm, &xm)
		check("fp2mInv", &zm, p.fp2Inv(x))
	}
	k := new(big.Int).SetUint64(e)
	c.fp2mExp(&zm, &xm, k)
	check("fp2mExp", &zm, p.fp2Exp(x, k))
	// Aliased: z = z·z and z = z².
	zm = xm
	c.fp2mMul(&zm, &zm, &zm)
	check("fp2mMul aliased", &zm, p.fp2Mul(x, x))
	zm = xm
	c.fp2mSquare(&zm, &zm)
	check("fp2mSquare aliased", &zm, p.fp2Square(x))
}

// TestFp2mMatchesFp2 is the F_q² differential: tower operations on
// Montgomery elements agree with the big.Int tower on random and edge
// inputs.
func TestFp2mMatchesFp2(t *testing.T) {
	p := Test()
	q := p.Q
	edges := fpEdgeValues(q)
	for _, a := range edges {
		for _, b := range edges {
			x := fp2{a: new(big.Int).Set(a), b: new(big.Int).Set(b)}
			y := fp2{a: new(big.Int).Set(b), b: new(big.Int).Set(a)}
			fp2CheckOps(t, p, x, y, 17)
		}
	}
	rnd := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		x := fp2{a: new(big.Int).Rand(rnd, q), b: new(big.Int).Rand(rnd, q)}
		y := fp2{a: new(big.Int).Rand(rnd, q), b: new(big.Int).Rand(rnd, q)}
		fp2CheckOps(t, p, x, y, rnd.Uint64()%4096)
	}
}

// TestFp2mLucasMatchesBigLucas pins the fixed-width Lucas ladder against the
// big.Int ladders on unitary elements, over the exponent gauntlet the final
// exponentiation and GT.Exp feed it (zero, negative, cofactor-sized).
func TestFp2mLucasMatchesBigLucas(t *testing.T) {
	p := Test()
	c := p.fpc
	gt := p.GTGenerator()
	bases := []fp2{gt.v}
	for i := 0; i < 4; i++ {
		k := big.NewInt(int64(i)*7919 + 3)
		bases = append(bases, gt.Exp(k).v)
	}
	// A unitary element straight off the Frobenius map, like finalExp builds.
	f := fp2{a: big.NewInt(123456789), b: big.NewInt(987654321)}
	bases = append(bases, p.fp2Mul(p.fp2Conj(f), p.fp2Inv(f)))
	// Real unitary bases: ±1 (the b = 0 special case).
	bases = append(bases,
		fp2{a: big.NewInt(1), b: new(big.Int)},
		fp2{a: new(big.Int).Sub(p.Q, one), b: new(big.Int)},
	)
	exps := []*big.Int{
		new(big.Int), one, big.NewInt(2), big.NewInt(-1), big.NewInt(-7919),
		new(big.Int).Set(p.H), new(big.Int).Neg(p.H),
		new(big.Int).Sub(p.R, one), new(big.Int).Add(p.R, one),
	}
	for bi, x := range bases {
		var xm, zm fp2m
		c.fp2mFromFp2(&xm, x)
		for ei, k := range exps {
			c.fp2mExpUnitaryLucas(&zm, &xm, k)
			want := p.fp2ExpUnitaryLucas(x, k)
			if got := c.fp2mToFp2(&zm); !got.equal(want) {
				t.Fatalf("base %d exp %d (%v): fixed-width Lucas ≠ big.Int Lucas", bi, ei, k)
			}
		}
	}
}

// FuzzFpMontgomery cross-checks the fixed-width base-field kernel against
// math/big on fuzzer-chosen inputs. Byte slices of any length are reduced
// mod q, so the fuzzer reaches 0, 1, q−1, and ≥ q states organically on top
// of the seeded edges.
func FuzzFpMontgomery(f *testing.F) {
	p := Test()
	c := p.fpc
	qm1 := new(big.Int).Sub(c.qBig, one).Bytes()
	f.Add([]byte{}, []byte{}, uint64(0))
	f.Add([]byte{1}, []byte{1}, uint64(1))
	f.Add(qm1, qm1, uint64(2))
	f.Add(c.qBig.Bytes(), []byte{7}, uint64(65537))
	f.Add(new(big.Int).Lsh(c.qBig, 1).Bytes(), qm1, uint64(3))
	f.Fuzz(func(t *testing.T, aRaw, bRaw []byte, e uint64) {
		if len(aRaw) > 64 || len(bRaw) > 64 {
			return // keep math/big oracle time bounded
		}
		a := new(big.Int).SetBytes(aRaw)
		b := new(big.Int).SetBytes(bRaw)
		fpCheckOps(t, c, a, b, e%(1<<16))
	})
}

// FuzzFp2Montgomery is the F_q² variant: tower operations plus the unitary
// Lucas ladder (on the unitarized input) against the big.Int tower.
func FuzzFp2Montgomery(f *testing.F) {
	p := Test()
	c := p.fpc
	qm1 := new(big.Int).Sub(p.Q, one).Bytes()
	f.Add([]byte{}, []byte{}, []byte{1}, []byte{1}, uint64(0))
	f.Add([]byte{1}, []byte{2}, []byte{3}, []byte{4}, uint64(5))
	f.Add(qm1, qm1, qm1, []byte{}, uint64(1<<15))
	f.Fuzz(func(t *testing.T, xa, xb, ya, yb []byte, e uint64) {
		if len(xa) > 64 || len(xb) > 64 || len(ya) > 64 || len(yb) > 64 {
			return
		}
		mk := func(raw []byte) *big.Int {
			return new(big.Int).Mod(new(big.Int).SetBytes(raw), p.Q)
		}
		x := fp2{a: mk(xa), b: mk(xb)}
		y := fp2{a: mk(ya), b: mk(yb)}
		fp2CheckOps(t, p, x, y, e%(1<<16))
		if x.isZero() {
			return
		}
		// Unitarize x (x̄/x has norm 1) and pin the Lucas ladders against
		// each other on it, with a signed exponent derived from e.
		u := p.fp2Mul(p.fp2Conj(x), p.fp2Inv(x))
		k := new(big.Int).SetUint64(e)
		if e%2 == 1 {
			k.Neg(k)
		}
		var um, zm fp2m
		c.fp2mFromFp2(&um, u)
		c.fp2mExpUnitaryLucas(&zm, &um, k)
		if got, want := c.fp2mToFp2(&zm), p.fp2ExpUnitaryLucas(u, k); !got.equal(want) {
			t.Fatal("fixed-width Lucas ladder disagrees with big.Int ladder")
		}
	})
}

// FuzzFpInvLehmer pins the Lehmer/divstep inversion against both the
// Fermat power ladder and math/big's ModInverse, at test scale (2 active
// limbs) and paper scale (9 active limbs). It also asserts the
// verified-fallback counter stays untouched: the Lehmer path must succeed
// on its own for every input, including 0, 1, q−1, and sparse-limb values.
func FuzzFpInvLehmer(f *testing.F) {
	pt := Test()
	pd := Default()
	f.Add([]byte{})                            // 0
	f.Add([]byte{1})                           // 1
	f.Add(new(big.Int).Sub(pd.Q, one).Bytes()) // q−1
	f.Add(new(big.Int).Sub(pt.Q, one).Bytes()) // small-field q−1
	f.Add([]byte{2})                           // smallest even
	f.Add(new(big.Int).Lsh(one, 62).Bytes())   // single mid bit
	f.Add(new(big.Int).Lsh(one, 511).Bytes())  // sparse top limb
	f.Add(pd.Q.Bytes())                        // ≡ 0 after reduction
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 80 {
			return // keep the math/big oracle time bounded
		}
		x := new(big.Int).SetBytes(raw)
		for _, p := range []*Params{pt, pd} {
			c := p.fpc
			before := fpInvFallbacks.Load()
			xr := new(big.Int).Mod(x, c.qBig)
			var xm, zm fpElement
			c.fromBig(&xm, xr)
			c.inv(&zm, &xm)
			got := c.toBig(&zm)
			if xr.Sign() == 0 {
				if got.Sign() != 0 {
					t.Fatalf("inv(0) = %v, want 0", got)
				}
				continue
			}
			want := new(big.Int).ModInverse(xr, c.qBig)
			if got.Cmp(want) != 0 {
				t.Fatalf("inv mismatch mod %v: got %v want %v", c.qBig, got, want)
			}
			var fm fpElement
			c.invFermat(&fm, &xm)
			if fm != zm {
				t.Fatal("Lehmer and Fermat inversions disagree")
			}
			// Aliased form must match too.
			alias := xm
			c.inv(&alias, &alias)
			if alias != zm {
				t.Fatal("aliased inv(x, x) disagrees with inv(z, x)")
			}
			if after := fpInvFallbacks.Load(); after != before {
				t.Fatalf("Lehmer inversion fell back to Fermat (%d → %d)", before, after)
			}
		}
	})
}
