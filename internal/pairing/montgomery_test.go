package pairing

import (
	"bytes"
	"math/big"
	"testing"
)

// kernelCloneT builds an independent Params clone running kernel k, the way
// the benchmarks and BENCH_pairing.json comparisons do.
func kernelCloneT(t *testing.T, p *Params, k Kernel) *Params {
	t.Helper()
	q, r, h, gx, gy := p.Export()
	cl, err := NewParams(q, r, h, gx, gy)
	if err != nil {
		t.Fatalf("clone params: %v", err)
	}
	cl.SetKernel(k)
	return cl
}

// allKernels are the three selectable kernels in dispatch order.
var allKernels = []struct {
	name   string
	kernel Kernel
}{
	{"montgomery", KernelMontgomery},
	{"projective", KernelProjective},
	{"reference", KernelReference},
}

// TestPairMatchesAllKernels pins reduced pairings, prepared-pairing walks,
// PairProd, and G/GT exponentiation byte-identical across the Montgomery,
// big.Int-projective, and affine-reference kernels on independent clones.
func TestPairMatchesAllKernels(t *testing.T) {
	base := Test()
	scalars := [][2]int64{{98765, 43210}, {1, 1}, {2, 3}, {7919, 7919}}
	for _, sc := range scalars {
		a, b := big.NewInt(sc[0]), big.NewInt(sc[1])
		k := new(big.Int).Mul(a, b)
		var pairB, prepB, prodB, gExpB, gtExpB []byte
		for i, kc := range allKernels {
			p := kernelCloneT(t, base, kc.kernel)
			if p.Kernel() != kc.kernel || p.activeKernel() != kc.kernel {
				t.Fatalf("%s: kernel selection not reflected", kc.name)
			}
			ga, gb := p.Generator().Exp(a), p.Generator().Exp(b)
			e := p.MustPair(ga, gb)
			pp, err := p.Prepare(ga).Pair(gb)
			if err != nil {
				t.Fatalf("%s prepared pair: %v", kc.name, err)
			}
			prod, err := p.PairProd([]*G{ga, gb}, []*G{gb, ga})
			if err != nil {
				t.Fatalf("%s PairProd: %v", kc.name, err)
			}
			gExp := ga.Exp(k)
			gtExp := e.Exp(k)
			if i == 0 {
				pairB, prepB, prodB = e.Marshal(), pp.Marshal(), prod.Marshal()
				gExpB, gtExpB = gExp.Marshal(), gtExp.Marshal()
				continue
			}
			if !bytes.Equal(e.Marshal(), pairB) {
				t.Fatalf("%s: Pair differs from montgomery (a=%v b=%v)", kc.name, a, b)
			}
			if !bytes.Equal(pp.Marshal(), prepB) {
				t.Fatalf("%s: prepared Pair differs from montgomery", kc.name)
			}
			if !bytes.Equal(prod.Marshal(), prodB) {
				t.Fatalf("%s: PairProd differs from montgomery", kc.name)
			}
			if !bytes.Equal(gExp.Marshal(), gExpB) {
				t.Fatalf("%s: G.Exp differs from montgomery", kc.name)
			}
			if !bytes.Equal(gtExp.Marshal(), gtExpB) {
				t.Fatalf("%s: GT.Exp differs from montgomery", kc.name)
			}
		}
	}
}

// TestPairMatchesAllKernelsPaperScale repeats the cross-kernel pin once at
// the 513-bit default field, where the Montgomery context runs nine limbs.
func TestPairMatchesAllKernelsPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale kernels in -short mode")
	}
	base := Default()
	a, b := big.NewInt(31337), big.NewInt(271828)
	var want []byte
	for i, kc := range allKernels {
		p := kernelCloneT(t, base, kc.kernel)
		ga, gb := p.Generator().Exp(a), p.Generator().Exp(b)
		e := p.MustPair(ga, gb)
		pp, err := p.Prepare(ga).Pair(gb)
		if err != nil {
			t.Fatalf("%s prepared pair: %v", kc.name, err)
		}
		if !pp.Equal(e) {
			t.Fatalf("%s: prepared pair ≠ Pair at paper scale", kc.name)
		}
		if i == 0 {
			want = e.Marshal()
		} else if !bytes.Equal(e.Marshal(), want) {
			t.Fatalf("%s: pairing differs from montgomery at paper scale", kc.name)
		}
	}
}

// TestMillerMontMatchesProjective pins the raw (unreduced) Miller values of
// the Montgomery and projective kernels limb-for-limb: the two walks use
// the same NAF chain and the same line scalings, so even the non-invariant
// pre-final-exponentiation values must agree exactly.
func TestMillerMontMatchesProjective(t *testing.T) {
	p := Test()
	g := p.Generator()
	for i := int64(1); i < 12; i++ {
		ga := g.Exp(big.NewInt(i * 104729))
		gb := g.Exp(big.NewInt(i*31 + 5))
		raw := p.millerMont(ga.pt, gb.pt)
		got := p.fpc.fp2mToFp2(&raw)
		want := p.millerProj(ga.pt, gb.pt)
		if !got.equal(want) {
			t.Fatalf("iteration %d: raw Miller values diverge", i)
		}
	}
}

// TestMontFallbackOversizedField simulates a parameter set whose prime
// exceeds the fixed limb width (fpc == nil): the Montgomery kernel must
// demote to the projective big.Int chain transparently and still agree with
// the true Montgomery results.
func TestMontFallbackOversizedField(t *testing.T) {
	base := Test()
	p := kernelCloneT(t, base, KernelMontgomery)
	p.fpc = nil // what newFpContext returns for >576-bit primes
	if p.Kernel() != KernelMontgomery {
		t.Fatal("requested kernel should still read back as Montgomery")
	}
	if p.activeKernel() != KernelProjective {
		t.Fatal("fallback did not demote to the projective kernel")
	}
	a, b := big.NewInt(12345), big.NewInt(67890)
	ga, gb := p.Generator().Exp(a), p.Generator().Exp(b)
	e := p.MustPair(ga, gb)
	pp, err := p.Prepare(ga).Pair(gb)
	if err != nil {
		t.Fatal(err)
	}
	wantP := base.Generator().Exp(a)
	want := base.MustPair(wantP, base.Generator().Exp(b))
	if !bytes.Equal(e.Marshal(), want.Marshal()) || !bytes.Equal(pp.Marshal(), want.Marshal()) {
		t.Fatal("fallback pairing differs from the Montgomery kernel")
	}
	if !bytes.Equal(e.Exp(a).Marshal(), want.Exp(a).Marshal()) {
		t.Fatal("fallback GT.Exp differs")
	}
	if _, err := p.UnmarshalGT(e.Marshal()); err != nil {
		t.Fatalf("fallback UnmarshalGT: %v", err)
	}
}

// TestSerializationByteIdenticalAcrossKernels is the wire-format guard: the
// bytes G.Marshal and GT.Marshal emit, and the elements UnmarshalG /
// UnmarshalGT accept, are identical whichever kernel produced them — the
// Montgomery↔canonical conversion at the boundary is exact.
func TestSerializationByteIdenticalAcrossKernels(t *testing.T) {
	base := Test()
	clones := make(map[string]*Params, len(allKernels))
	for _, kc := range allKernels {
		clones[kc.name] = kernelCloneT(t, base, kc.kernel)
	}
	for i := int64(0); i < 16; i++ {
		k := new(big.Int).Mul(big.NewInt(i), big.NewInt(999983))
		var gBytes, gtBytes []byte
		for _, kc := range allKernels {
			p := clones[kc.name]
			gB := p.Generator().Exp(k).Marshal()
			gtB := p.GTGenerator().Exp(k).Marshal()
			if kc.kernel == KernelMontgomery {
				gBytes, gtBytes = gB, gtB
				continue
			}
			if !bytes.Equal(gB, gBytes) {
				t.Fatalf("k=%v: %s G bytes differ from montgomery", k, kc.name)
			}
			if !bytes.Equal(gtB, gtBytes) {
				t.Fatalf("k=%v: %s GT bytes differ from montgomery", k, kc.name)
			}
		}
		// Round trips decode to equal elements under every kernel.
		for _, kc := range allKernels {
			p := clones[kc.name]
			g, err := p.UnmarshalG(gBytes)
			if err != nil {
				t.Fatalf("k=%v: %s UnmarshalG: %v", k, kc.name, err)
			}
			if !bytes.Equal(g.Marshal(), gBytes) {
				t.Fatalf("k=%v: %s G round trip drifted", k, kc.name)
			}
			if i != 0 { // zero GT exponent marshals to 1, still valid
				gt, err := p.UnmarshalGT(gtBytes)
				if err != nil {
					t.Fatalf("k=%v: %s UnmarshalGT: %v", k, kc.name, err)
				}
				if !bytes.Equal(gt.Marshal(), gtBytes) {
					t.Fatalf("k=%v: %s GT round trip drifted", k, kc.name)
				}
			}
		}
	}
}

// TestHotPathZeroBigIntAllocs pins the allocation contract of the
// Montgomery kernel at paper scale: the field primitives are allocation-free
// and a full Pair / prepared Pair performs only the handful of fixed
// boundary conversions (fp2m→fp2 plus the result wrapper) — zero per-step
// big.Int churn. The -benchmem benchmarks show the same numbers; this test
// fails the build if they regress.
func TestHotPathZeroBigIntAllocs(t *testing.T) {
	p := Default()
	c := p.fpc
	var x, y, z fpElement
	c.fromBig(&x, big.NewInt(123456789))
	c.fromBig(&y, big.NewInt(987654321))
	if a := testing.AllocsPerRun(100, func() { c.mul(&z, &x, &y) }); a != 0 {
		t.Fatalf("fpMul allocates %v/op", a)
	}
	if a := testing.AllocsPerRun(100, func() { c.square(&z, &x) }); a != 0 {
		t.Fatalf("fpSquare allocates %v/op", a)
	}
	if a := testing.AllocsPerRun(10, func() { c.inv(&z, &x) }); a != 0 {
		t.Fatalf("fpInv allocates %v/op", a)
	}
	var xm, ym, zm fp2m
	xm.a, xm.b, ym.a, ym.b = x, y, y, x
	if a := testing.AllocsPerRun(100, func() { c.fp2mMul(&zm, &xm, &ym) }); a != 0 {
		t.Fatalf("fp2mMul allocates %v/op", a)
	}
	if a := testing.AllocsPerRun(100, func() { c.fp2mSquare(&zm, &xm) }); a != 0 {
		t.Fatalf("fp2mSquare allocates %v/op", a)
	}

	g := p.Generator()
	ga, gb := g.Exp(big.NewInt(31337)), g.Exp(big.NewInt(271828))
	// The only allocations in a full pairing are the boundary conversions:
	// two coordinates out of Montgomery form plus the fp2/GT wrappers.
	const pairAllocBudget = 8
	if a := testing.AllocsPerRun(5, func() { p.MustPair(ga, gb) }); a > pairAllocBudget {
		t.Fatalf("Pair allocates %v/op, budget %d", a, pairAllocBudget)
	}
	pre := p.Prepare(ga)
	if a := testing.AllocsPerRun(5, func() {
		if _, err := pre.Pair(gb); err != nil {
			t.Fatal(err)
		}
	}); a > pairAllocBudget {
		t.Fatalf("PreparedG.Pair allocates %v/op, budget %d", a, pairAllocBudget)
	}
}
