package pairing

import (
	"errors"
	"fmt"
	"io"
	"math/big"
)

// G is an element of the order-R source group G ⊂ E(F_q). The group law is
// written multiplicatively (Mul/Exp/Inv/One) to match the paper. G values
// are immutable: every operation returns a fresh element.
type G struct {
	p  *Params
	pt point
}

// GT is an element of the order-R target group G_T ⊂ F_q²*, also written
// multiplicatively. GT values are immutable.
type GT struct {
	p *Params
	v fp2
}

// Errors returned by element operations and deserialization.
var (
	ErrMixedParams = errors.New("pairing: elements from different parameter sets")
	ErrBadEncoding = errors.New("pairing: malformed element encoding")
)

// Generator returns the fixed generator g of G.
func (p *Params) Generator() *G {
	return &G{p: p, pt: p.gen.clone()}
}

// OneG returns the identity of G.
func (p *Params) OneG() *G {
	return &G{p: p, pt: infinity()}
}

// OneGT returns the identity of G_T.
func (p *Params) OneGT() *GT {
	return &GT{p: p, v: fp2One()}
}

// GTGenerator returns e(g, g), a generator of G_T.
func (p *Params) GTGenerator() *GT {
	return &GT{p: p, v: p.pair(p.gen, p.gen)}
}

// HashToG hashes arbitrary data onto G (try-and-increment + cofactor
// clearing).
func (p *Params) HashToG(data []byte) (*G, error) {
	pt, ok := p.hashToPoint(data)
	if !ok {
		return nil, fmt.Errorf("%w: hash-to-curve exhausted attempts", ErrInvalidParams)
	}
	return &G{p: p, pt: pt}, nil
}

// RandomG returns g^k for uniformly random k along with k itself.
func (p *Params) RandomG(rnd io.Reader) (*G, *big.Int, error) {
	k, err := p.RandomScalar(rnd)
	if err != nil {
		return nil, nil, err
	}
	return p.Generator().Exp(k), k, nil
}

// RandomGT returns e(g,g)^k for uniformly random k along with k itself.
func (p *Params) RandomGT(rnd io.Reader) (*GT, *big.Int, error) {
	k, err := p.RandomScalar(rnd)
	if err != nil {
		return nil, nil, err
	}
	return p.GTGenerator().Exp(k), k, nil
}

// Pair computes the symmetric pairing e(a, b).
func (p *Params) Pair(a, b *G) (*GT, error) {
	if a.p != p || b.p != p {
		return nil, ErrMixedParams
	}
	return &GT{p: p, v: p.pair(a.pt, b.pt)}, nil
}

// MustPair is Pair for elements known to share parameters; it panics on
// parameter mismatch, which indicates a programming error.
func (p *Params) MustPair(a, b *G) *GT {
	gt, err := p.Pair(a, b)
	if err != nil {
		panic(err)
	}
	return gt
}

// ---- G operations ----

// Params returns the parameter set the element belongs to.
func (g *G) Params() *Params { return g.p }

// Mul returns g·h (elliptic-curve point addition).
func (g *G) Mul(h *G) *G {
	return &G{p: g.p, pt: g.p.add(g.pt, h.pt)}
}

// Exp returns g^k (scalar multiplication). k is normalized mod R (the order
// of G) before the ladder runs, so zero, negative, and oversized scalars
// cost the same bounded double-and-add chain as their reduced residue.
func (g *G) Exp(k *big.Int) *G {
	return &G{p: g.p, pt: g.p.mulScalar(g.pt, k)}
}

// Inv returns g⁻¹ (point negation).
func (g *G) Inv() *G {
	return &G{p: g.p, pt: g.p.neg(g.pt)}
}

// Div returns g·h⁻¹.
func (g *G) Div(h *G) *G {
	return g.Mul(h.Inv())
}

// IsOne reports whether g is the group identity.
func (g *G) IsOne() bool { return g.pt.inf }

// Equal reports element equality.
func (g *G) Equal(h *G) bool {
	return g.p == h.p && g.pt.equal(h.pt)
}

// Clone returns an independent copy.
func (g *G) Clone() *G {
	return &G{p: g.p, pt: g.pt.clone()}
}

func (g *G) String() string {
	if g.pt.inf {
		return "G(∞)"
	}
	return fmt.Sprintf("G(%x…)", g.pt.x.Bytes()[:4])
}

// ---- GT operations ----

// Params returns the parameter set the element belongs to.
func (t *GT) Params() *Params { return t.p }

// Mul returns t·u.
func (t *GT) Mul(u *GT) *GT {
	return &GT{p: t.p, v: t.p.fp2Mul(t.v, u.v)}
}

// Exp returns t^k. k is normalized mod R — the order of G_T inside the
// unitary (norm-1) subgroup of F_q²* — before the ladder runs, so zero,
// negative, and oversized scalars cost one bounded chain. The Montgomery
// kernel runs the Lucas ladder on fixed-width field elements (fp2m.go),
// the projective kernel on big.Int (lucas.go); the reference kernel keeps
// square-and-multiply.
func (t *GT) Exp(k *big.Int) *GT {
	kk := new(big.Int).Mod(k, t.p.R)
	switch t.p.activeKernel() {
	case KernelReference:
		return &GT{p: t.p, v: t.p.fp2ExpUnitary(t.v, kk)}
	case KernelMontgomery:
		c := t.p.fpc
		var x, z fp2m
		c.fp2mFromFp2(&x, t.v)
		c.fp2mExpUnitaryLucas(&z, &x, kk)
		return &GT{p: t.p, v: c.fp2mToFp2(&z)}
	default:
		return &GT{p: t.p, v: t.p.fp2ExpUnitaryLucas(t.v, kk)}
	}
}

// Inv returns t⁻¹. Elements of G_T have norm 1, so inversion is conjugation.
func (t *GT) Inv() *GT {
	return &GT{p: t.p, v: t.p.fp2Conj(t.v)}
}

// Div returns t·u⁻¹.
func (t *GT) Div(u *GT) *GT {
	return t.Mul(u.Inv())
}

// IsOne reports whether t is the group identity.
func (t *GT) IsOne() bool { return t.v.isOne() }

// Equal reports element equality.
func (t *GT) Equal(u *GT) bool {
	return t.p == u.p && t.v.equal(u.v)
}

// Clone returns an independent copy.
func (t *GT) Clone() *GT {
	return &GT{p: t.p, v: t.v.clone()}
}

func (t *GT) String() string {
	return fmt.Sprintf("GT(%x…)", t.v.a.Bytes()[:min(4, len(t.v.a.Bytes()))])
}
