package pairing

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestJacobianMatchesAffineScalarMult(t *testing.T) {
	p := Test()
	g := p.gen
	f := func(k64 uint64) bool {
		k := new(big.Int).SetUint64(k64)
		return p.mulScalarJac(g, k).equal(p.mulScalarAffine(g, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestJacobianEdgeCases(t *testing.T) {
	p := Test()
	g := p.gen
	cases := []*big.Int{
		new(big.Int),                         // 0 → ∞
		big.NewInt(1),                        // 1 → g
		big.NewInt(2),                        // doubling only
		big.NewInt(3),                        // double + add
		new(big.Int).Sub(p.R, big.NewInt(1)), // r−1 → −g
		new(big.Int).Set(p.R),                // r → ∞
		new(big.Int).Add(p.R, big.NewInt(1)), // r+1 → g
		new(big.Int).Set(p.H),                // the cofactor (raw, > r)
	}
	for _, k := range cases {
		want := p.mulScalarAffine(g, k)
		got := p.mulScalarJac(g, k)
		if !got.equal(want) {
			t.Fatalf("k=%v: jacobian %v ≠ affine %v", k, got, want)
		}
	}
	// Infinity base.
	if !p.mulScalarJac(infinity(), big.NewInt(7)).inf {
		t.Fatal("7·∞ ≠ ∞")
	}
	// Two-torsion base: (0,0) doubles to ∞.
	twoTor := point{x: new(big.Int), y: new(big.Int)}
	if !p.mulScalarJac(twoTor, big.NewInt(2)).inf {
		t.Fatal("2·(0,0) ≠ ∞ in jacobian path")
	}
	if !p.mulScalarJac(twoTor, big.NewInt(3)).equal(twoTor) {
		t.Fatal("3·(0,0) ≠ (0,0) in jacobian path")
	}
}

func TestJacAddAffineOppositePoints(t *testing.T) {
	p := Test()
	g := p.gen
	j := toJac(g)
	if !p.jacAddAffine(j, p.neg(g)).isInf() {
		t.Fatal("g + (−g) ≠ ∞")
	}
	// Same point through mixed addition must fall back to doubling.
	sum := p.toAffine(p.jacAddAffine(j, g))
	if !sum.equal(p.double(g)) {
		t.Fatal("mixed add of equal points ≠ doubling")
	}
}

func TestJacRoundTrip(t *testing.T) {
	p := Test()
	f := func(k64 uint64) bool {
		k := new(big.Int).SetUint64(k64)
		pt := p.mulScalarAffine(p.gen, k)
		return p.toAffine(toJac(pt)).equal(pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
	if !p.toAffine(jacInfinity()).inf {
		t.Fatal("∞ round trip failed")
	}
}
