package hur

import (
	"fmt"
	"io"
	"math/big"
	"sort"
	"sync"

	"maacs/internal/engine"
	"maacs/internal/pairing"
	"maacs/internal/waters"
)

// Errors reported by the manager and decryption.
var (
	ErrNotMember      = fmt.Errorf("hur: user is not a member of a required attribute group")
	ErrUnknownAttr    = fmt.Errorf("hur: attribute has no group state")
	ErrHeaderMismatch = fmt.Errorf("hur: header does not cover the user")
)

// Header distributes one attribute's current group key to its members: the
// group key wrapped under every node key of the minimal KEK-tree cover.
type Header struct {
	Attr    string
	Version int
	// Wrapped maps a KEK-tree node index to gk wrapped under that node key.
	Wrapped map[int]*big.Int
}

// ProtectedCiphertext is a Waters ciphertext whose per-row components have
// been re-encrypted by the server under the per-attribute group keys:
// C̃_i = C_i^gk_x, D̃_i = D_i^gk_x for x = ρ(i).
type ProtectedCiphertext struct {
	Inner    *waters.Ciphertext
	Versions map[string]int // attribute → group-key version applied
	Headers  map[string]*Header
}

// Manager is the data-service manager of Hur's scheme: it lives at the
// (trusted) storage server, maintains the KEK tree and the per-attribute
// membership groups, applies group keys to ciphertexts, and re-keys groups
// on revocation.
type Manager struct {
	params *pairing.Params
	tree   *KEKTree

	mu       sync.Mutex
	groupKey map[string]*big.Int
	version  map[string]int
	members  map[string]map[string]bool
}

// NewManager creates a manager over a KEK tree with the given user capacity.
func NewManager(params *pairing.Params, capacity int, rnd io.Reader) (*Manager, error) {
	tree, err := NewKEKTree(capacity, params.R, rnd)
	if err != nil {
		return nil, err
	}
	return &Manager{
		params:   params,
		tree:     tree,
		groupKey: make(map[string]*big.Int),
		version:  make(map[string]int),
		members:  make(map[string]map[string]bool),
	}, nil
}

// Enrol registers a user and returns its KEK path keys (sent once over a
// secure channel) along with the user's public leaf node index.
func (m *Manager) Enrol(uid string) (pathKeys []*big.Int, leafNode int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys, err := m.tree.Enrol(uid)
	if err != nil {
		return nil, 0, err
	}
	return keys, m.tree.capacity - 1 + m.tree.leafOf[uid], nil
}

// Grant adds uid to the membership group of attr, creating the group (and
// its first group key) on demand.
func (m *Manager) Grant(attr, uid string, rnd io.Reader) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.members[attr] == nil {
		gk, err := randScalar(m.params.R, rnd)
		if err != nil {
			return err
		}
		m.members[attr] = make(map[string]bool)
		m.groupKey[attr] = gk
		m.version[attr] = 0
	}
	m.members[attr][uid] = true
	return nil
}

// headerLocked builds the current header for attr. Caller holds m.mu.
func (m *Manager) headerLocked(attr string) (*Header, error) {
	gk, ok := m.groupKey[attr]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
	}
	var members []string
	for uid := range m.members[attr] {
		members = append(members, uid)
	}
	sort.Strings(members)
	cover, err := m.tree.Cover(members)
	if err != nil {
		return nil, err
	}
	h := &Header{Attr: attr, Version: m.version[attr], Wrapped: make(map[int]*big.Int, len(cover))}
	for _, node := range cover {
		nk, err := m.tree.KeyAt(node)
		if err != nil {
			return nil, err
		}
		h.Wrapped[node] = wrap(m.params, gk, nk, node)
	}
	return h, nil
}

// Protect applies the current group keys to a freshly uploaded Waters
// ciphertext and attaches the headers — the server-side half of Hur's
// construction.
func (m *Manager) Protect(ct *waters.Ciphertext) (*ProtectedCiphertext, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := &ProtectedCiphertext{
		Inner: &waters.Ciphertext{
			Policy: ct.Policy,
			Matrix: ct.Matrix.Clone(),
			C:      ct.C.Clone(),
			CPrime: ct.CPrime.Clone(),
			Ci:     make([]*pairing.G, len(ct.Ci)),
			Di:     make([]*pairing.G, len(ct.Di)),
		},
		Versions: make(map[string]int),
		Headers:  make(map[string]*Header),
	}
	// Look up group keys and build headers serially (both read manager
	// state, and header errors must surface in row order as before); the
	// per-row exponentiations then fan out across the engine pool.
	gks := make([]*big.Int, len(ct.Matrix.Rho))
	for i, q := range ct.Matrix.Rho {
		gk, ok := m.groupKey[q]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownAttr, q)
		}
		gks[i] = gk
		if _, done := out.Versions[q]; !done {
			out.Versions[q] = m.version[q]
			h, err := m.headerLocked(q)
			if err != nil {
				return nil, err
			}
			out.Headers[q] = h
		}
	}
	_ = engine.Default().Run(len(ct.Matrix.Rho), func(i int) error {
		out.Inner.Ci[i] = ct.Ci[i].Exp(gks[i])
		out.Inner.Di[i] = ct.Di[i].Exp(gks[i])
		return nil
	})
	return out, nil
}

// Revoke removes uid from attr's group, draws a fresh group key, and
// re-encrypts every supplied protected ciphertext in place (only rows
// labelled attr change — the partial re-encryption Hur's efficiency rests
// on). It returns the number of ciphertext rows touched.
func (m *Manager) Revoke(attr, uid string, cts []*ProtectedCiphertext, rnd io.Reader) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldGK, ok := m.groupKey[attr]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
	}
	if !m.members[attr][uid] {
		return 0, fmt.Errorf("%w: %q not in group %q", ErrUnknownUser, uid, attr)
	}
	delete(m.members[attr], uid)
	newGK, err := randScalar(m.params.R, rnd)
	if err != nil {
		return 0, err
	}
	m.groupKey[attr] = newGK
	m.version[attr]++

	// Ciphertext rows move from gk_old to gk_new via exponent gk_new/gk_old.
	ratio := new(big.Int).ModInverse(oldGK, m.params.R)
	ratio.Mul(ratio, newGK)
	ratio.Mod(ratio, m.params.R)

	// Flatten the affected (ciphertext, row) pairs and fan the row
	// exponentiations out across the engine pool; headers and version
	// bumps stay serial (they read manager state under m.mu).
	type rowRef struct {
		ct  *ProtectedCiphertext
		row int
	}
	var work []rowRef
	var involved []*ProtectedCiphertext
	for _, ct := range cts {
		if _, ok := ct.Versions[attr]; !ok {
			continue
		}
		involved = append(involved, ct)
		for i, q := range ct.Inner.Matrix.Rho {
			if q == attr {
				work = append(work, rowRef{ct: ct, row: i})
			}
		}
	}
	_ = engine.Default().Run(len(work), func(j int) error {
		ct, i := work[j].ct, work[j].row
		ct.Inner.Ci[i] = ct.Inner.Ci[i].Exp(ratio)
		ct.Inner.Di[i] = ct.Inner.Di[i].Exp(ratio)
		return nil
	})
	for _, ct := range involved {
		ct.Versions[attr] = m.version[attr]
		h, err := m.headerLocked(attr)
		if err != nil {
			return len(work), err
		}
		ct.Headers[attr] = h
	}
	return len(work), nil
}

// User is the client-side state: the Waters key, the KEK path keys, and the
// user's (public) leaf node index in the tree.
type User struct {
	UID      string
	SK       *waters.SecretKey
	PathKeys []*big.Int
	LeafNode int
}

// recoverGroupKey opens a header with the user's path keys.
func (u *User) recoverGroupKey(p *pairing.Params, h *Header) (*big.Int, error) {
	node := u.LeafNode
	depth := 0
	for {
		if wrapped, ok := h.Wrapped[node]; ok {
			return unwrap(p, wrapped, u.PathKeys[depth], node), nil
		}
		if node == 0 {
			break
		}
		node = (node - 1) / 2
		depth++
	}
	return nil, fmt.Errorf("%w: attribute %q", ErrHeaderMismatch, h.Attr)
}

// Decrypt opens a protected ciphertext: it recovers each needed group key
// from the headers, strips the group-key exponents from the rows the user
// will use, and runs the inner Waters decryption.
func Decrypt(p *pairing.Params, ct *ProtectedCiphertext, u *User) (*pairing.GT, error) {
	// Strip group keys from every row whose attribute the user holds and is
	// a current group member of.
	inner := &waters.Ciphertext{
		Policy: ct.Inner.Policy,
		Matrix: ct.Inner.Matrix,
		C:      ct.Inner.C,
		CPrime: ct.Inner.CPrime,
		Ci:     make([]*pairing.G, len(ct.Inner.Ci)),
		Di:     make([]*pairing.G, len(ct.Inner.Di)),
	}
	sk := &waters.SecretKey{K: u.SK.K, L: u.SK.L, KAttr: make(map[string]*pairing.G)}
	gkCache := make(map[string]*big.Int)
	for i, q := range ct.Inner.Matrix.Rho {
		inner.Ci[i] = ct.Inner.Ci[i]
		inner.Di[i] = ct.Inner.Di[i]
		if _, holds := u.SK.KAttr[q]; !holds {
			continue
		}
		gk, ok := gkCache[q]
		if !ok {
			h, hasHeader := ct.Headers[q]
			if !hasHeader {
				continue
			}
			recovered, err := u.recoverGroupKey(p, h)
			if err != nil {
				continue // not a member (e.g. revoked): row stays blinded
			}
			gk = recovered
			gkCache[q] = gk
		}
		inv := new(big.Int).ModInverse(gk, p.R)
		inner.Ci[i] = ct.Inner.Ci[i].Exp(inv)
		inner.Di[i] = ct.Inner.Di[i].Exp(inv)
		sk.KAttr[q] = u.SK.KAttr[q]
	}
	return waters.Decrypt(p, inner, sk)
}
