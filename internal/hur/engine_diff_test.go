package hur

import (
	mrand "math/rand"
	"testing"

	"maacs/internal/engine"
	"maacs/internal/pairing"
	"maacs/internal/waters"
)

// Differential test: the whole Protect → Revoke path, rebuilt from one
// seeded randomness stream, must produce bit-identical ciphertexts at
// workers=1 (inline serial path) and workers=8. A single stream is the
// strongest form of the engine's guarantee: randomness consumption order
// must not depend on the worker count anywhere along the path.
func TestSerialParallelIdentical(t *testing.T) {
	build := func(workers int) *ProtectedCiphertext {
		restore := engine.SetWorkers(workers)
		defer restore()
		rnd := mrand.New(mrand.NewSource(42))

		p := pairing.Test()
		aa, err := waters.Setup(p, rnd)
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := NewManager(p, 8, rnd)
		if err != nil {
			t.Fatal(err)
		}
		for _, uid := range []string{"alice", "bob"} {
			if _, _, err := mgr.Enrol(uid); err != nil {
				t.Fatal(err)
			}
			for _, attr := range []string{"doctor", "nurse"} {
				if err := mgr.Grant(attr, uid, rnd); err != nil {
					t.Fatal(err)
				}
			}
		}
		m, _, err := p.RandomGT(rnd)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := waters.Encrypt(aa.PK, m, "doctor AND nurse", rnd)
		if err != nil {
			t.Fatal(err)
		}
		pct, err := mgr.Protect(ct)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Revoke("doctor", "bob", []*ProtectedCiphertext{pct}, rnd); err != nil {
			t.Fatal(err)
		}
		return pct
	}

	a, b := build(1), build(8)
	if !a.Inner.C.Equal(b.Inner.C) || !a.Inner.CPrime.Equal(b.Inner.CPrime) {
		t.Fatal("C/C' differ")
	}
	for i := range a.Inner.Ci {
		if !a.Inner.Ci[i].Equal(b.Inner.Ci[i]) || !a.Inner.Di[i].Equal(b.Inner.Di[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
	for attr, v := range a.Versions {
		if b.Versions[attr] != v {
			t.Fatalf("version of %q differs", attr)
		}
	}
	for attr, h := range a.Headers {
		hb := b.Headers[attr]
		if hb == nil || hb.Version != h.Version || len(hb.Wrapped) != len(h.Wrapped) {
			t.Fatalf("header of %q differs", attr)
		}
		for node, w := range h.Wrapped {
			if hb.Wrapped[node] == nil || hb.Wrapped[node].Cmp(w) != 0 {
				t.Fatalf("header of %q: node %d differs", attr, node)
			}
		}
	}
}
