package hur

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"testing"
	"testing/quick"

	"maacs/internal/pairing"
)

func newTree(t *testing.T, capacity int) *KEKTree {
	t.Helper()
	tree, err := NewKEKTree(capacity, pairing.Test().R, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestCapacityRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}} {
		tree := newTree(t, tc.in)
		if tree.Capacity() != tc.want {
			t.Errorf("capacity(%d) = %d, want %d", tc.in, tree.Capacity(), tc.want)
		}
	}
}

func TestPathKeysLength(t *testing.T) {
	tree := newTree(t, 8)
	keys, err := tree.Enrol("u")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 4 { // leaf + 2 internal + root for 8 leaves
		t.Fatalf("path length %d, want 4 (log2(8)+1)", len(keys))
	}
}

func TestCoverExactness(t *testing.T) {
	tree := newTree(t, 8)
	var uids []string
	for i := 0; i < 8; i++ {
		uid := fmt.Sprintf("u%d", i)
		uids = append(uids, uid)
		if _, err := tree.Enrol(uid); err != nil {
			t.Fatal(err)
		}
	}
	// leavesUnder returns the leaf slots under a node.
	var leavesUnder func(node, lo, hi int, target int) []int
	leavesUnder = func(node, lo, hi int, target int) []int {
		if node == target {
			out := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		}
		if hi-lo == 1 {
			return nil
		}
		mid := (lo + hi) / 2
		if l := leavesUnder(2*node+1, lo, mid, target); l != nil {
			return l
		}
		return leavesUnder(2*node+2, mid, hi, target)
	}

	f := func(mask uint8) bool {
		var members []string
		want := make(map[int]bool)
		for i := 0; i < 8; i++ {
			if mask&(1<<i) != 0 {
				members = append(members, uids[i])
				want[i] = true
			}
		}
		cover, err := tree.Cover(members)
		if err != nil {
			return false
		}
		got := make(map[int]bool)
		for _, node := range cover {
			for _, leaf := range leavesUnder(0, 0, 8, node) {
				if got[leaf] {
					return false // overlapping cover
				}
				got[leaf] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for leaf := range want {
			if !got[leaf] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

func TestCoverMinimality(t *testing.T) {
	tree := newTree(t, 8)
	for i := 0; i < 8; i++ {
		if _, err := tree.Enrol(fmt.Sprintf("u%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// All 8 members → single root node.
	all := []string{"u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7"}
	cover, err := tree.Cover(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 1 || cover[0] != 0 {
		t.Fatalf("cover(all) = %v, want [0]", cover)
	}
	// All but one → log2(n) = 3 nodes.
	cover, err = tree.Cover(all[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 3 {
		t.Fatalf("cover(all but one) has %d nodes, want 3", len(cover))
	}
}

func TestWrapUnwrapRoundTrip(t *testing.T) {
	p := pairing.Test()
	f := func(gk64, nk64 uint64, node uint8) bool {
		gk := new(big.Int).SetUint64(gk64)
		gk.Mod(gk, p.R)
		nk := new(big.Int).SetUint64(nk64)
		w := wrap(p, gk, nk, int(node))
		return unwrap(p, w, nk, int(node)).Cmp(gk) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnwrapWithWrongKeyFails(t *testing.T) {
	p := pairing.Test()
	gk := big.NewInt(12345)
	nk := big.NewInt(777)
	w := wrap(p, gk, nk, 3)
	if unwrap(p, w, big.NewInt(778), 3).Cmp(gk) == 0 {
		t.Fatal("unwrap succeeded with wrong node key")
	}
	if unwrap(p, w, nk, 4).Cmp(gk) == 0 {
		t.Fatal("unwrap succeeded with wrong node index")
	}
}

func TestEnrolDuplicate(t *testing.T) {
	tree := newTree(t, 4)
	if _, err := tree.Enrol("u"); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Enrol("u"); err == nil {
		t.Fatal("duplicate enrol accepted")
	}
}

func TestCoverUnknownUser(t *testing.T) {
	tree := newTree(t, 4)
	if _, err := tree.Cover([]string{"ghost"}); err == nil {
		t.Fatal("cover of unknown user accepted")
	}
}
