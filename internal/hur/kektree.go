// Package hur implements the Hur–Noh attribute-revocation baseline
// ("Attribute-Based Access Control with Efficient Revocation in Data
// Outsourcing Systems", IEEE TPDS 2011 — reference [12] of the paper): a
// single-authority CP-ABE (internal/waters) augmented with per-attribute
// group keys that the storage server applies to the ciphertext and
// distributes to current attribute-group members through a binary KEK
// (key-encryption-key) tree, so a membership change costs O(log n) header
// keys instead of a full re-keying.
//
// The paper cites this scheme as the revocation baseline that *requires a
// trusted server*; our revocation benchmarks compare against it.
package hur

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"maacs/internal/pairing"
)

// Errors reported by the KEK tree.
var (
	ErrTreeFull    = errors.New("hur: KEK tree is full")
	ErrUnknownUser = errors.New("hur: user not enrolled in the KEK tree")
)

// KEKTree is a complete binary tree whose leaves are (potential) users.
// Every node holds a random key; each user knows exactly the keys on its
// leaf-to-root path. A subset S of users is covered by the minimal set of
// subtrees whose leaves lie entirely inside S; encrypting to those node keys
// reaches exactly S.
type KEKTree struct {
	capacity int        // number of leaves (power of two)
	keys     []*big.Int // heap layout: node i has children 2i+1, 2i+2
	leafOf   map[string]int
	order    *big.Int
}

// NewKEKTree builds a tree with at least capacity leaves (rounded up to a
// power of two), drawing node keys below order.
func NewKEKTree(capacity int, order *big.Int, rnd io.Reader) (*KEKTree, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("hur: capacity must be positive, got %d", capacity)
	}
	leaves := 1
	for leaves < capacity {
		leaves *= 2
	}
	total := 2*leaves - 1
	t := &KEKTree{
		capacity: leaves,
		keys:     make([]*big.Int, total),
		leafOf:   make(map[string]int),
		order:    new(big.Int).Set(order),
	}
	for i := range t.keys {
		k, err := randScalar(order, rnd)
		if err != nil {
			return nil, err
		}
		t.keys[i] = k
	}
	return t, nil
}

func randScalar(order *big.Int, rnd io.Reader) (*big.Int, error) {
	max := new(big.Int).Sub(order, big.NewInt(1))
	buf := make([]byte, (order.BitLen()+15)/8)
	if _, err := io.ReadFull(rnd, buf); err != nil {
		return nil, fmt.Errorf("hur: randomness: %w", err)
	}
	k := new(big.Int).SetBytes(buf)
	k.Mod(k, max)
	k.Add(k, big.NewInt(1))
	return k, nil
}

// Capacity returns the number of leaves.
func (t *KEKTree) Capacity() int { return t.capacity }

// Enrol assigns the next free leaf to uid and returns the user's path keys,
// ordered leaf → root.
func (t *KEKTree) Enrol(uid string) ([]*big.Int, error) {
	if _, ok := t.leafOf[uid]; ok {
		return nil, fmt.Errorf("hur: user %q already enrolled", uid)
	}
	slot := len(t.leafOf)
	if slot >= t.capacity {
		return nil, ErrTreeFull
	}
	t.leafOf[uid] = slot
	return t.PathKeys(uid)
}

// PathKeys returns the keys on uid's leaf-to-root path.
func (t *KEKTree) PathKeys(uid string) ([]*big.Int, error) {
	slot, ok := t.leafOf[uid]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, uid)
	}
	node := t.capacity - 1 + slot
	var out []*big.Int
	for {
		out = append(out, new(big.Int).Set(t.keys[node]))
		if node == 0 {
			break
		}
		node = (node - 1) / 2
	}
	return out, nil
}

// Cover returns the node indices of the minimal subtree cover of the given
// member set: every member leaf is under exactly one returned node, and no
// non-member leaf is under any of them.
func (t *KEKTree) Cover(members []string) ([]int, error) {
	in := make([]bool, t.capacity)
	for _, uid := range members {
		slot, ok := t.leafOf[uid]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownUser, uid)
		}
		in[slot] = true
	}
	var out []int
	var rec func(node, lo, hi int) bool // returns true if all leaves in [lo,hi) are members
	rec = func(node, lo, hi int) bool {
		if hi-lo == 1 {
			return in[lo]
		}
		mid := (lo + hi) / 2
		left := rec(2*node+1, lo, mid)
		right := rec(2*node+2, mid, hi)
		if left && right {
			return true
		}
		if left {
			out = append(out, 2*node+1)
		}
		if right {
			out = append(out, 2*node+2)
		}
		return false
	}
	if rec(0, 0, t.capacity) {
		out = []int{0}
	}
	return out, nil
}

// KeyAt returns the key of a node (server side).
func (t *KEKTree) KeyAt(node int) (*big.Int, error) {
	if node < 0 || node >= len(t.keys) {
		return nil, fmt.Errorf("hur: node %d out of range", node)
	}
	return new(big.Int).Set(t.keys[node]), nil
}

// wrap hides a group key under a node key: gk + H(nodeKey‖node) mod r.
// Without the node key the pad is uniform.
func wrap(p *pairing.Params, gk, nodeKey *big.Int, node int) *big.Int {
	pad := padFor(p, nodeKey, node)
	out := new(big.Int).Add(gk, pad)
	out.Mod(out, p.R)
	return out
}

// unwrap inverts wrap.
func unwrap(p *pairing.Params, wrapped, nodeKey *big.Int, node int) *big.Int {
	pad := padFor(p, nodeKey, node)
	out := new(big.Int).Sub(wrapped, pad)
	out.Mod(out, p.R)
	return out
}

func padFor(p *pairing.Params, nodeKey *big.Int, node int) *big.Int {
	buf := make([]byte, 8+len(nodeKey.Bytes()))
	binary.BigEndian.PutUint64(buf[:8], uint64(node))
	copy(buf[8:], nodeKey.Bytes())
	return p.HashToScalar(buf)
}
