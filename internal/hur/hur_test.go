package hur

import (
	"crypto/rand"
	"errors"
	"testing"

	"maacs/internal/pairing"
	"maacs/internal/waters"
)

type fixture struct {
	t   *testing.T
	p   *pairing.Params
	aa  *waters.Authority
	mgr *Manager
}

func newFixture(t *testing.T, capacity int) *fixture {
	t.Helper()
	p := pairing.Test()
	aa, err := waters.Setup(p, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(p, capacity, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, p: p, aa: aa, mgr: mgr}
}

func (f *fixture) newUser(uid string, attrs []string) *User {
	f.t.Helper()
	sk, err := f.aa.KeyGen(attrs, rand.Reader)
	if err != nil {
		f.t.Fatal(err)
	}
	path, leaf, err := f.mgr.Enrol(uid)
	if err != nil {
		f.t.Fatal(err)
	}
	for _, a := range attrs {
		if err := f.mgr.Grant(a, uid, rand.Reader); err != nil {
			f.t.Fatal(err)
		}
	}
	return &User{UID: uid, SK: sk, PathKeys: path, LeafNode: leaf}
}

func (f *fixture) protect(policy string) (*pairing.GT, *ProtectedCiphertext) {
	f.t.Helper()
	m, _, err := f.p.RandomGT(rand.Reader)
	if err != nil {
		f.t.Fatal(err)
	}
	ct, err := waters.Encrypt(f.aa.PK, m, policy, rand.Reader)
	if err != nil {
		f.t.Fatal(err)
	}
	prot, err := f.mgr.Protect(ct)
	if err != nil {
		f.t.Fatal(err)
	}
	return m, prot
}

func TestProtectedRoundTrip(t *testing.T) {
	f := newFixture(t, 8)
	alice := f.newUser("alice", []string{"doctor", "nurse"})
	m, ct := f.protect("doctor AND nurse")
	got, err := Decrypt(f.p, ct, alice)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("decryption mismatch")
	}
}

func TestRevokedMemberLosesAccess(t *testing.T) {
	f := newFixture(t, 8)
	alice := f.newUser("alice", []string{"doctor"})
	bob := f.newUser("bob", []string{"doctor"})
	m, ct := f.protect("doctor")

	touched, err := f.mgr.Revoke("doctor", "alice", []*ProtectedCiphertext{ct}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if touched != 1 {
		t.Fatalf("touched %d rows, want 1", touched)
	}
	if got, err := Decrypt(f.p, ct, alice); err == nil && got.Equal(m) {
		t.Fatal("revoked user still decrypts")
	}
	got, err := Decrypt(f.p, ct, bob)
	if err != nil {
		t.Fatalf("remaining member lost access: %v", err)
	}
	if !got.Equal(m) {
		t.Fatal("remaining member got wrong message")
	}
}

func TestRevocationIsPerAttribute(t *testing.T) {
	f := newFixture(t, 8)
	alice := f.newUser("alice", []string{"doctor", "nurse"})
	mD, ctDoctor := f.protect("doctor")
	mN, ctNurse := f.protect("nurse")

	if _, err := f.mgr.Revoke("doctor", "alice", []*ProtectedCiphertext{ctDoctor, ctNurse}, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if got, err := Decrypt(f.p, ctDoctor, alice); err == nil && got.Equal(mD) {
		t.Fatal("doctor access survived revocation")
	}
	got, err := Decrypt(f.p, ctNurse, alice)
	if err != nil || !got.Equal(mN) {
		t.Fatalf("nurse access lost by doctor revocation: %v", err)
	}
}

func TestNewlyProtectedDataExcludesRevokedUser(t *testing.T) {
	f := newFixture(t, 8)
	alice := f.newUser("alice", []string{"doctor"})
	bob := f.newUser("bob", []string{"doctor"})
	if _, err := f.mgr.Revoke("doctor", "alice", nil, rand.Reader); err != nil {
		t.Fatal(err)
	}
	m, ct := f.protect("doctor")
	if got, err := Decrypt(f.p, ct, alice); err == nil && got.Equal(m) {
		t.Fatal("revoked user reads new data")
	}
	if got, err := Decrypt(f.p, ct, bob); err != nil || !got.Equal(m) {
		t.Fatalf("member cannot read new data: %v", err)
	}
}

func TestNonMemberCannotDecrypt(t *testing.T) {
	f := newFixture(t, 8)
	// carol has the ABE key for doctor but was never granted group
	// membership: the group-key layer must stop her.
	sk, err := f.aa.KeyGen([]string{"doctor"}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	path, leaf, err := f.mgr.Enrol("carol")
	if err != nil {
		t.Fatal(err)
	}
	carol := &User{UID: "carol", SK: sk, PathKeys: path, LeafNode: leaf}
	f.newUser("alice", []string{"doctor"}) // creates the group
	m, ct := f.protect("doctor")
	if got, err := Decrypt(f.p, ct, carol); err == nil && got.Equal(m) {
		t.Fatal("non-member decrypted via ABE key alone")
	}
}

func TestRevokeValidation(t *testing.T) {
	f := newFixture(t, 4)
	f.newUser("alice", []string{"doctor"})
	if _, err := f.mgr.Revoke("pilot", "alice", nil, rand.Reader); !errors.Is(err, ErrUnknownAttr) {
		t.Fatalf("got %v, want ErrUnknownAttr", err)
	}
	if _, err := f.mgr.Revoke("doctor", "ghost", nil, rand.Reader); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("got %v, want ErrUnknownUser", err)
	}
}

func TestTreeFull(t *testing.T) {
	f := newFixture(t, 2)
	f.newUser("u1", []string{"a"})
	f.newUser("u2", []string{"a"})
	if _, _, err := f.mgr.Enrol("u3"); !errors.Is(err, ErrTreeFull) {
		t.Fatalf("got %v, want ErrTreeFull", err)
	}
}

func TestProtectRequiresGroups(t *testing.T) {
	f := newFixture(t, 4)
	m, _, err := f.p.RandomGT(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := waters.Encrypt(f.aa.PK, m, "ghostattr", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.mgr.Protect(ct); !errors.Is(err, ErrUnknownAttr) {
		t.Fatalf("got %v, want ErrUnknownAttr", err)
	}
}
