package lsss

import (
	"fmt"
	"math/big"
)

// Matrix is a monotone span program over Z_r: an l×n matrix whose rows are
// labelled with attributes by Rho. A set of attributes S satisfies the
// program iff (1, 0, …, 0) lies in the Z_r-span of the rows {i : Rho[i] ∈ S}.
type Matrix struct {
	// Rows holds the l row vectors, each of length Cols.
	Rows [][]*big.Int
	// Rho labels each row with its attribute; injective by construction.
	Rho []string
	// Cols is the number of columns n.
	Cols int
	// Order is the modulus r all arithmetic is performed under.
	Order *big.Int
}

// Compile turns an access tree into a monotone span program over the given
// prime order, using the recursive Vandermonde construction.
func Compile(root *Node, order *big.Int) (*Matrix, error) {
	if root == nil {
		return nil, ErrEmptyPolicy
	}
	if err := root.validate(); err != nil {
		return nil, err
	}
	m := &Matrix{Cols: 1, Order: new(big.Int).Set(order)}
	seen := make(map[string]bool)
	if err := m.build(root, []*big.Int{big.NewInt(1)}, seen); err != nil {
		return nil, err
	}
	// Pad all rows to the final column count.
	for i, row := range m.Rows {
		for len(row) < m.Cols {
			row = append(row, new(big.Int))
		}
		m.Rows[i] = row
	}
	return m, nil
}

// CompilePolicy parses and compiles a policy expression in one step.
func CompilePolicy(policy string, order *big.Int) (*Matrix, error) {
	root, err := Parse(policy)
	if err != nil {
		return nil, err
	}
	return Compile(root, order)
}

// build assigns vector v (length ≤ m.Cols) to node n. Leaves append a row;
// a (t, k)-gate appends t−1 fresh columns and recurses with the Shamir
// vectors v + Σ_j i^j·e_{c+j}.
func (m *Matrix) build(n *Node, v []*big.Int, seen map[string]bool) error {
	if n.IsLeaf() {
		if seen[n.Attr] {
			return fmt.Errorf("%w: %q", ErrDuplicateAttribute, n.Attr)
		}
		seen[n.Attr] = true
		row := make([]*big.Int, len(v))
		for i, c := range v {
			row[i] = new(big.Int).Mod(c, m.Order)
		}
		m.Rows = append(m.Rows, row)
		m.Rho = append(m.Rho, n.Attr)
		return nil
	}
	t := n.Threshold
	base := m.Cols
	m.Cols += t - 1
	for idx, child := range n.Children {
		i := int64(idx + 1) // evaluation point for this child
		cv := make([]*big.Int, m.Cols)
		for j := range cv {
			if j < len(v) {
				cv[j] = new(big.Int).Set(v[j])
			} else {
				cv[j] = new(big.Int)
			}
		}
		pw := big.NewInt(1)
		bigI := big.NewInt(i)
		for j := 1; j < t; j++ {
			pw = new(big.Int).Mul(pw, bigI)
			pw.Mod(pw, m.Order)
			cv[base+j-1].Add(cv[base+j-1], pw)
			cv[base+j-1].Mod(cv[base+j-1], m.Order)
		}
		if err := m.build(child, cv, seen); err != nil {
			return err
		}
	}
	return nil
}

// RowOf returns the index of the row labelled attr, or −1.
func (m *Matrix) RowOf(attr string) int {
	for i, a := range m.Rho {
		if a == attr {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{
		Rows:  make([][]*big.Int, len(m.Rows)),
		Rho:   append([]string(nil), m.Rho...),
		Cols:  m.Cols,
		Order: new(big.Int).Set(m.Order),
	}
	for i, row := range m.Rows {
		r := make([]*big.Int, len(row))
		for j, c := range row {
			r[j] = new(big.Int).Set(c)
		}
		out.Rows[i] = r
	}
	return out
}
