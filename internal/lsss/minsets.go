package lsss

import "sort"

// MinimalSets enumerates the minimal authorized attribute sets of the
// policy: every returned set satisfies the policy, no proper subset of a
// returned set does, and every satisfying set contains one of them. Useful
// for owners auditing who a policy actually admits, and for tests.
//
// The enumeration is exponential in the worst case (policies are monotone
// boolean functions); maxSets caps the output (0 = no cap) and the second
// return value reports whether the enumeration was truncated.
func (n *Node) MinimalSets(maxSets int) (sets [][]string, truncated bool) {
	raw, truncated := n.minimalSets(maxSets)
	out := make([][]string, 0, len(raw))
	for _, s := range raw {
		attrs := make([]string, 0, len(s))
		for a := range s {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		out = append(out, attrs)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out, truncated
}

type attrSet map[string]bool

func (n *Node) minimalSets(maxSets int) ([]attrSet, bool) {
	if n.IsLeaf() {
		return []attrSet{{n.Attr: true}}, false
	}
	// Gather each child's minimal sets.
	childSets := make([][]attrSet, len(n.Children))
	truncated := false
	for i, c := range n.Children {
		cs, tr := c.minimalSets(maxSets)
		childSets[i] = cs
		truncated = truncated || tr
	}
	// A (t, n) gate is satisfied by choosing t children and one minimal set
	// from each; union them, then prune non-minimal results.
	var acc []attrSet
	var choose func(start, picked int, cur attrSet)
	choose = func(start, picked int, cur attrSet) {
		if maxSets > 0 && len(acc) >= maxSets*4 {
			truncated = true
			return
		}
		if picked == n.Threshold {
			cp := make(attrSet, len(cur))
			for a := range cur {
				cp[a] = true
			}
			acc = append(acc, cp)
			return
		}
		if len(n.Children)-start < n.Threshold-picked {
			return
		}
		for i := start; i < len(n.Children); i++ {
			for _, cs := range childSets[i] {
				added := make([]string, 0, len(cs))
				for a := range cs {
					if !cur[a] {
						cur[a] = true
						added = append(added, a)
					}
				}
				choose(i+1, picked+1, cur)
				for _, a := range added {
					delete(cur, a)
				}
			}
		}
	}
	choose(0, 0, make(attrSet))
	acc = pruneNonMinimal(acc)
	if maxSets > 0 && len(acc) > maxSets {
		acc = acc[:maxSets]
		truncated = true
	}
	return acc, truncated
}

// pruneNonMinimal drops sets that are supersets of another set.
func pruneNonMinimal(sets []attrSet) []attrSet {
	sort.Slice(sets, func(i, j int) bool { return len(sets[i]) < len(sets[j]) })
	var out []attrSet
	for _, s := range sets {
		minimal := true
		for _, kept := range out {
			if isSubset(kept, s) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, s)
		}
	}
	return out
}

func isSubset(small, big attrSet) bool {
	if len(small) > len(big) {
		return false
	}
	for a := range small {
		if !big[a] {
			return false
		}
	}
	return true
}
