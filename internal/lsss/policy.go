package lsss

import (
	"errors"
	"fmt"
	"strings"
)

// Node is a node of a monotone access tree: either a leaf naming an
// attribute, or a (Threshold, len(Children)) gate.
type Node struct {
	// Attr is the attribute name for a leaf node ("" for gates).
	Attr string
	// Threshold is the number of children that must be satisfied (gates
	// only). AND over n children has Threshold n; OR has Threshold 1.
	Threshold int
	// Children are the sub-policies of a gate node (nil for leaves).
	Children []*Node
}

// Errors produced by policy parsing and compilation.
var (
	ErrEmptyPolicy        = errors.New("lsss: empty policy")
	ErrSyntax             = errors.New("lsss: policy syntax error")
	ErrDuplicateAttribute = errors.New("lsss: duplicate attribute in policy (ρ must be injective)")
	ErrBadThreshold       = errors.New("lsss: threshold out of range")
)

// IsLeaf reports whether n is an attribute leaf.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Leaf returns a leaf node for an attribute.
func Leaf(attr string) *Node { return &Node{Attr: attr} }

// And returns an AND gate over the given sub-policies.
func And(children ...*Node) *Node {
	return &Node{Threshold: len(children), Children: children}
}

// Or returns an OR gate over the given sub-policies.
func Or(children ...*Node) *Node {
	return &Node{Threshold: 1, Children: children}
}

// Threshold returns a k-of-n gate over the given sub-policies.
func Threshold(k int, children ...*Node) *Node {
	return &Node{Threshold: k, Children: children}
}

// String renders the tree back into the policy language. Single-child gates
// collapse to the child so the rendering is a parse/render fixed point.
func (n *Node) String() string {
	if n.IsLeaf() {
		return n.Attr
	}
	if len(n.Children) == 1 {
		return n.Children[0].String()
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = c.String()
	}
	switch n.Threshold {
	case 1:
		return "(" + strings.Join(parts, " OR ") + ")"
	case len(n.Children):
		return "(" + strings.Join(parts, " AND ") + ")"
	default:
		return fmt.Sprintf("%d of (%s)", n.Threshold, strings.Join(parts, ", "))
	}
}

// validate checks threshold ranges throughout the tree.
func (n *Node) validate() error {
	if n.IsLeaf() {
		if n.Attr == "" {
			return fmt.Errorf("%w: empty attribute name", ErrSyntax)
		}
		return nil
	}
	if n.Threshold < 1 || n.Threshold > len(n.Children) {
		return fmt.Errorf("%w: %d of %d", ErrBadThreshold, n.Threshold, len(n.Children))
	}
	for _, c := range n.Children {
		if err := c.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Attributes returns the attribute names at the leaves, left to right.
func (n *Node) Attributes() []string {
	var out []string
	n.walk(func(leaf *Node) {
		out = append(out, leaf.Attr)
	})
	return out
}

func (n *Node) walk(visit func(leaf *Node)) {
	if n.IsLeaf() {
		visit(n)
		return
	}
	for _, c := range n.Children {
		c.walk(visit)
	}
}

// ---- parser ----

type tokenKind int

const (
	tokAttr tokenKind = iota + 1
	tokAnd
	tokOr
	tokOf
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	input string
	pos   int
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && (l.input[l.pos] == ' ' || l.input[l.pos] == '\t' || l.input[l.pos] == '\n') {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	switch c := l.input[l.pos]; {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case isWordByte(c):
		for l.pos < len(l.input) && isWordByte(l.input[l.pos]) {
			l.pos++
		}
		word := l.input[start:l.pos]
		switch strings.ToUpper(word) {
		case "AND":
			return token{kind: tokAnd, text: word, pos: start}, nil
		case "OR":
			return token{kind: tokOr, text: word, pos: start}, nil
		case "OF":
			return token{kind: tokOf, text: word, pos: start}, nil
		}
		if isNumber(word) {
			return token{kind: tokNumber, text: word, pos: start}, nil
		}
		return token{kind: tokAttr, text: word, pos: start}, nil
	default:
		return token{}, fmt.Errorf("%w: unexpected character %q at %d", ErrSyntax, c, start)
	}
}

func isWordByte(c byte) bool {
	return c == '_' || c == ':' || c == '.' || c == '-' || c == '@' || c == '#' ||
		(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNumber(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

type parser struct {
	lex lexer
	cur token
}

// Parse parses a policy expression into an access tree.
//
// Grammar (OR binds loosest, AND tighter, thresholds and parens tightest):
//
//	expr   := term ( OR term )*
//	term   := factor ( AND factor )*
//	factor := attr | '(' expr ')' | number OF '(' expr (',' expr)* ')'
func Parse(policy string) (*Node, error) {
	p := parser{lex: lexer{input: policy}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.cur.kind == tokEOF {
		return nil, ErrEmptyPolicy
	}
	node, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, fmt.Errorf("%w: trailing input %q at %d", ErrSyntax, p.cur.text, p.cur.pos)
	}
	if err := node.validate(); err != nil {
		return nil, err
	}
	return node, nil
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = tok
	return nil
}

func (p *parser) parseExpr() (*Node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	children := []*Node{left}
	for p.cur.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return left, nil
	}
	return Or(children...), nil
}

func (p *parser) parseTerm() (*Node, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	children := []*Node{left}
	for p.cur.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return left, nil
	}
	return And(children...), nil
}

func (p *parser) parseFactor() (*Node, error) {
	switch p.cur.kind {
	case tokAttr:
		leaf := Leaf(p.cur.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return leaf, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		node, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.cur.kind != tokRParen {
			return nil, fmt.Errorf("%w: expected ')' at %d", ErrSyntax, p.cur.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return node, nil
	case tokNumber:
		k := 0
		for _, c := range p.cur.text {
			k = k*10 + int(c-'0')
			if k > 1<<20 {
				return nil, fmt.Errorf("%w: threshold too large", ErrBadThreshold)
			}
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind != tokOf {
			return nil, fmt.Errorf("%w: expected OF after threshold at %d", ErrSyntax, p.cur.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind != tokLParen {
			return nil, fmt.Errorf("%w: expected '(' after OF at %d", ErrSyntax, p.cur.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var children []*Node
		for {
			child, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			children = append(children, child)
			if p.cur.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.cur.kind != tokRParen {
			return nil, fmt.Errorf("%w: expected ')' at %d", ErrSyntax, p.cur.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return Threshold(k, children...), nil
	default:
		return nil, fmt.Errorf("%w: unexpected token %q at %d", ErrSyntax, p.cur.text, p.cur.pos)
	}
}
