package lsss

import (
	"math/big"
	"testing"
)

// FuzzParse asserts the parser never panics and that everything it accepts
// survives render → re-parse → compile.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"a",
		"a AND b",
		"a OR b AND c",
		"2 of (a, b, c)",
		"(a OR b) AND 3 of (c, d, e, f)",
		"", "(", ")", "AND", "2 of", "2 of (", "a AND", "((a)", "1 of (a)",
		"0 of (a)", "9999999999999 of (a)", "a:b:c AND x.y-z@w",
		"a, b", "a b", "a ** b", "2 OF (A, B)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	order := big.NewInt(1000003)
	f.Fuzz(func(t *testing.T, policy string) {
		root, err := Parse(policy)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := root.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", policy, rendered, err)
		}
		if back.String() != rendered {
			t.Fatalf("unstable rendering: %q vs %q", rendered, back.String())
		}
		// Compilation must not panic; duplicate attributes may be rejected.
		if m, err := Compile(root, order); err == nil {
			if len(m.Rows) != len(root.Attributes()) {
				t.Fatalf("row count %d ≠ leaf count %d", len(m.Rows), len(root.Attributes()))
			}
		}
	})
}
