package lsss

import (
	"crypto/rand"
	"errors"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

var testOrder = big.NewInt(1000003) // small prime for readable tests

func compile(t *testing.T, policy string) *Matrix {
	t.Helper()
	m, err := CompilePolicy(policy, testOrder)
	if err != nil {
		t.Fatalf("CompilePolicy(%q): %v", policy, err)
	}
	return m
}

func TestCompileSingleAttr(t *testing.T) {
	m := compile(t, "a")
	if len(m.Rows) != 1 || m.Cols != 1 {
		t.Fatalf("got %dx%d, want 1x1", len(m.Rows), m.Cols)
	}
	if m.Rows[0][0].Int64() != 1 {
		t.Fatalf("row = %v, want (1)", m.Rows[0])
	}
}

func TestCompileDimensions(t *testing.T) {
	cases := []struct {
		policy string
		rows   int
		cols   int
	}{
		{"a AND b", 2, 2},
		{"a OR b", 2, 1},
		{"2 of (a, b, c)", 3, 2},
		{"a AND b AND c", 3, 3},
		{"(a OR b) AND (c OR d)", 4, 2},
		{"a AND (b OR 2 of (c, d, e))", 5, 3},
	}
	for _, tc := range cases {
		m := compile(t, tc.policy)
		if len(m.Rows) != tc.rows || m.Cols != tc.cols {
			t.Errorf("%q: got %dx%d, want %dx%d", tc.policy, len(m.Rows), m.Cols, tc.rows, tc.cols)
		}
		if len(m.Rho) != tc.rows {
			t.Errorf("%q: |Rho| = %d", tc.policy, len(m.Rho))
		}
	}
}

func TestCompileRejectsDuplicateAttr(t *testing.T) {
	_, err := CompilePolicy("a AND (b OR a)", testOrder)
	if !errors.Is(err, ErrDuplicateAttribute) {
		t.Fatalf("got %v, want ErrDuplicateAttribute", err)
	}
}

func TestSatisfiesTruthTable(t *testing.T) {
	cases := []struct {
		policy string
		attrs  []string
		want   bool
	}{
		{"a", []string{"a"}, true},
		{"a", []string{"b"}, false},
		{"a AND b", []string{"a", "b"}, true},
		{"a AND b", []string{"a"}, false},
		{"a AND b", []string{"b"}, false},
		{"a OR b", []string{"a"}, true},
		{"a OR b", []string{"b"}, true},
		{"a OR b", []string{"c"}, false},
		{"2 of (a, b, c)", []string{"a", "b"}, true},
		{"2 of (a, b, c)", []string{"a", "c"}, true},
		{"2 of (a, b, c)", []string{"b", "c"}, true},
		{"2 of (a, b, c)", []string{"a"}, false},
		{"2 of (a, b, c)", []string{"c"}, false},
		{"(a OR b) AND (c OR d)", []string{"a", "d"}, true},
		{"(a OR b) AND (c OR d)", []string{"a", "b"}, false},
		{"a AND (b OR 2 of (c, d, e))", []string{"a", "b"}, true},
		{"a AND (b OR 2 of (c, d, e))", []string{"a", "c", "e"}, true},
		{"a AND (b OR 2 of (c, d, e))", []string{"a", "c"}, false},
		{"a AND (b OR 2 of (c, d, e))", []string{"b", "c", "d"}, false},
		{"3 of (a, b, c, d)", []string{"a", "b", "c"}, true},
		{"3 of (a, b, c, d)", []string{"a", "b"}, false},
		// Extra attributes never hurt (monotonicity).
		{"a AND b", []string{"a", "b", "z"}, true},
	}
	for _, tc := range cases {
		m := compile(t, tc.policy)
		if got := m.Satisfies(tc.attrs); got != tc.want {
			t.Errorf("%q ⊨ %v = %v, want %v", tc.policy, tc.attrs, got, tc.want)
		}
	}
}

func TestShareReconstructRoundTrip(t *testing.T) {
	policies := []struct {
		policy string
		attrs  []string
	}{
		{"a", []string{"a"}},
		{"a AND b", []string{"a", "b"}},
		{"a OR b", []string{"b"}},
		{"2 of (a, b, c)", []string{"a", "c"}},
		{"(a OR b) AND (c OR d)", []string{"b", "c"}},
		{"a AND (b OR 2 of (c, d, e))", []string{"a", "d", "e"}},
		{"3 of (a, b, c, d, e)", []string{"b", "d", "e"}},
	}
	for _, tc := range policies {
		m := compile(t, tc.policy)
		secret := big.NewInt(424242)
		shares, err := m.Share(secret, rand.Reader)
		if err != nil {
			t.Fatalf("%q: Share: %v", tc.policy, err)
		}
		w, err := m.Reconstruct(tc.attrs)
		if err != nil {
			t.Fatalf("%q: Reconstruct(%v): %v", tc.policy, tc.attrs, err)
		}
		acc := new(big.Int)
		for i, wi := range w {
			acc.Add(acc, new(big.Int).Mul(wi, shares[i]))
		}
		acc.Mod(acc, testOrder)
		if acc.Cmp(secret) != 0 {
			t.Errorf("%q: reconstructed %v, want %v", tc.policy, acc, secret)
		}
	}
}

func TestReconstructOnlyUsesAuthorizedRows(t *testing.T) {
	m := compile(t, "(a OR b) AND (c OR d)")
	w, err := m.Reconstruct([]string{"a", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if m.Rho[i] != "a" && m.Rho[i] != "c" {
			t.Errorf("coefficient for unauthorized row %q", m.Rho[i])
		}
	}
}

func TestReconstructFailsForUnauthorizedSet(t *testing.T) {
	m := compile(t, "a AND b")
	if _, err := m.Reconstruct([]string{"a"}); !errors.Is(err, ErrNotSatisfied) {
		t.Fatalf("got %v, want ErrNotSatisfied", err)
	}
	if _, err := m.Reconstruct(nil); !errors.Is(err, ErrNotSatisfied) {
		t.Fatalf("empty set: got %v, want ErrNotSatisfied", err)
	}
}

// TestPropertySatisfactionMatchesTreeSemantics cross-checks the span-program
// satisfaction test against direct boolean evaluation of the access tree on
// random attribute subsets.
func TestPropertySatisfactionMatchesTreeSemantics(t *testing.T) {
	policies := []string{
		"a AND b",
		"a OR b",
		"2 of (a, b, c)",
		"(a OR b) AND (c OR d)",
		"a AND (b OR 2 of (c, d, e))",
		"2 of (a AND b, c, d OR e)",
		"3 of (a, b, c, d)",
	}
	universe := []string{"a", "b", "c", "d", "e"}
	for _, policy := range policies {
		root, err := Parse(policy)
		if err != nil {
			t.Fatal(err)
		}
		m := compile(t, policy)
		f := func(mask uint8) bool {
			var attrs []string
			for i, a := range universe {
				if mask&(1<<i) != 0 {
					attrs = append(attrs, a)
				}
			}
			return m.Satisfies(attrs) == evalTree(root, attrs)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
			t.Errorf("%q: %v", policy, err)
		}
	}
}

// TestPropertyReconstructionRecoversSecret verifies on random satisfying sets
// that the reconstruction coefficients recover a random secret.
func TestPropertyReconstructionRecoversSecret(t *testing.T) {
	m := compile(t, "2 of (a, b, c) AND (d OR e)")
	root, _ := Parse("2 of (a, b, c) AND (d OR e)")
	universe := []string{"a", "b", "c", "d", "e"}
	rng := mrand.New(mrand.NewSource(7))
	for trial := 0; trial < 64; trial++ {
		mask := rng.Intn(32)
		var attrs []string
		for i, a := range universe {
			if mask&(1<<i) != 0 {
				attrs = append(attrs, a)
			}
		}
		secret := big.NewInt(int64(rng.Intn(1000000)))
		shares, err := m.Share(secret, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		w, err := m.Reconstruct(attrs)
		if evalTree(root, attrs) {
			if err != nil {
				t.Fatalf("satisfying set %v rejected: %v", attrs, err)
			}
			acc := new(big.Int)
			for i, wi := range w {
				acc.Add(acc, new(big.Int).Mul(wi, shares[i]))
			}
			acc.Mod(acc, testOrder)
			if acc.Cmp(secret) != 0 {
				t.Fatalf("attrs %v: reconstructed %v, want %v", attrs, acc, secret)
			}
		} else if err == nil {
			t.Fatalf("non-satisfying set %v produced coefficients", attrs)
		}
	}
}

// evalTree evaluates the access tree directly as a boolean formula.
func evalTree(n *Node, attrs []string) bool {
	if n.IsLeaf() {
		for _, a := range attrs {
			if a == n.Attr {
				return true
			}
		}
		return false
	}
	sat := 0
	for _, c := range n.Children {
		if evalTree(c, attrs) {
			sat++
		}
	}
	return sat >= n.Threshold
}

func TestShareWithVectorValidatesLength(t *testing.T) {
	m := compile(t, "a AND b")
	if _, err := m.ShareWithVector([]*big.Int{big.NewInt(1)}); err == nil {
		t.Fatal("ShareWithVector accepted wrong-length vector")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := compile(t, "a AND b")
	c := m.Clone()
	c.Rows[0][0].SetInt64(999)
	if m.Rows[0][0].Int64() == 999 {
		t.Fatal("Clone shares row storage")
	}
}

func TestRowOf(t *testing.T) {
	m := compile(t, "a AND b")
	if m.RowOf("b") != 1 || m.RowOf("a") != 0 || m.RowOf("zz") != -1 {
		t.Fatalf("RowOf wrong: a=%d b=%d zz=%d", m.RowOf("a"), m.RowOf("b"), m.RowOf("zz"))
	}
}

// TestZeroSharing exercises the Lewko-style "share zero" usage: shares of 0
// recombine to 0 with the same coefficients.
func TestZeroSharing(t *testing.T) {
	m := compile(t, "(a OR b) AND (c OR d)")
	shares, err := m.Share(new(big.Int), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.Reconstruct([]string{"b", "d"})
	if err != nil {
		t.Fatal(err)
	}
	acc := new(big.Int)
	for i, wi := range w {
		acc.Add(acc, new(big.Int).Mul(wi, shares[i]))
	}
	acc.Mod(acc, testOrder)
	if acc.Sign() != 0 {
		t.Fatalf("zero shares recombined to %v", acc)
	}
}
