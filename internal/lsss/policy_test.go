package lsss

import (
	"errors"
	"strings"
	"testing"
)

func TestParseSimpleAttr(t *testing.T) {
	n, err := Parse("A:doctor")
	if err != nil {
		t.Fatal(err)
	}
	if !n.IsLeaf() || n.Attr != "A:doctor" {
		t.Fatalf("got %+v, want leaf A:doctor", n)
	}
}

func TestParsePrecedenceAndOverOr(t *testing.T) {
	n, err := Parse("a OR b AND c")
	if err != nil {
		t.Fatal(err)
	}
	// Must parse as a OR (b AND c).
	if n.IsLeaf() || n.Threshold != 1 || len(n.Children) != 2 {
		t.Fatalf("root is %+v, want OR with 2 children", n)
	}
	right := n.Children[1]
	if right.IsLeaf() || right.Threshold != 2 || len(right.Children) != 2 {
		t.Fatalf("right child is %+v, want AND", right)
	}
}

func TestParseParensOverridePrecedence(t *testing.T) {
	n, err := Parse("(a OR b) AND c")
	if err != nil {
		t.Fatal(err)
	}
	if n.Threshold != 2 || len(n.Children) != 2 {
		t.Fatalf("root is %+v, want AND", n)
	}
	if n.Children[0].Threshold != 1 {
		t.Fatalf("left child is %+v, want OR", n.Children[0])
	}
}

func TestParseThresholdGate(t *testing.T) {
	n, err := Parse("2 of (a, b, c)")
	if err != nil {
		t.Fatal(err)
	}
	if n.Threshold != 2 || len(n.Children) != 3 {
		t.Fatalf("got %+v, want 2-of-3", n)
	}
}

func TestParseNestedThreshold(t *testing.T) {
	n, err := Parse("x AND 2 of (a, b OR c, 3 of (d, e, f))")
	if err != nil {
		t.Fatal(err)
	}
	if n.Threshold != 2 || len(n.Children) != 2 {
		t.Fatalf("root: %+v", n)
	}
	th := n.Children[1]
	if th.Threshold != 2 || len(th.Children) != 3 {
		t.Fatalf("threshold gate: %+v", th)
	}
	inner := th.Children[2]
	if inner.Threshold != 3 || len(inner.Children) != 3 {
		t.Fatalf("inner gate: %+v", inner)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	for _, policy := range []string{"a and b", "a AND b", "a And b"} {
		n, err := Parse(policy)
		if err != nil {
			t.Fatalf("%q: %v", policy, err)
		}
		if n.Threshold != 2 {
			t.Fatalf("%q: not an AND", policy)
		}
	}
}

func TestParseAttributeCharset(t *testing.T) {
	n, err := Parse("hospital-1:chief_of-staff.v2@west")
	if err != nil {
		t.Fatal(err)
	}
	if n.Attr != "hospital-1:chief_of-staff.v2@west" {
		t.Fatalf("attr mangled: %q", n.Attr)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]error{
		"":               ErrEmptyPolicy,
		"   ":            ErrEmptyPolicy,
		"a AND":          ErrSyntax,
		"AND a":          ErrSyntax,
		"(a OR b":        ErrSyntax,
		"a b":            ErrSyntax,
		"a ** b":         ErrSyntax,
		"4 of (a, b, c)": ErrBadThreshold,
		"0 of (a, b)":    ErrBadThreshold,
		"2 of a":         ErrSyntax,
		"2 (a, b)":       ErrSyntax,
		"a, b":           ErrSyntax,
	}
	for policy, want := range cases {
		_, err := Parse(policy)
		if err == nil {
			t.Errorf("Parse(%q): expected error", policy)
			continue
		}
		if !errors.Is(err, want) {
			t.Errorf("Parse(%q): got %v, want %v", policy, err, want)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, policy := range []string{
		"a",
		"(a AND b)",
		"(a OR (b AND c))",
		"2 of (a, b, c)",
		"(x AND 2 of (a, (b OR c)))",
	} {
		n, err := Parse(policy)
		if err != nil {
			t.Fatalf("%q: %v", policy, err)
		}
		n2, err := Parse(n.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", n.String(), err)
		}
		if n2.String() != n.String() {
			t.Errorf("unstable rendering: %q vs %q", n.String(), n2.String())
		}
	}
}

func TestAttributesInOrder(t *testing.T) {
	n, err := Parse("a AND (b OR 2 of (c, d, e))")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(n.Attributes(), ",")
	if got != "a,b,c,d,e" {
		t.Fatalf("Attributes() = %s", got)
	}
}

func TestBuilderHelpers(t *testing.T) {
	n := And(Leaf("a"), Or(Leaf("b"), Leaf("c")))
	if err := n.validate(); err != nil {
		t.Fatal(err)
	}
	if n.Threshold != 2 || n.Children[1].Threshold != 1 {
		t.Fatalf("builders wrong: %+v", n)
	}
}
