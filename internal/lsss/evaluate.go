package lsss

// Evaluate computes the boolean semantics of the access tree directly on an
// attribute set. It is the reference semantics the span program must agree
// with (Compile + Satisfies is tested against it), and a cheap pre-check for
// callers that want to avoid a Gaussian elimination when the answer is "no".
func (n *Node) Evaluate(attrs []string) bool {
	set := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		set[a] = true
	}
	return n.evaluate(set)
}

func (n *Node) evaluate(set map[string]bool) bool {
	if n.IsLeaf() {
		return set[n.Attr]
	}
	satisfied := 0
	for _, c := range n.Children {
		if c.evaluate(set) {
			satisfied++
			if satisfied >= n.Threshold {
				return true
			}
		}
	}
	return false
}

// Simplify returns an equivalent tree with nested same-kind gates flattened
// (AND of ANDs, OR of ORs) and single-child gates collapsed. Leaves are
// shared, not copied.
func (n *Node) Simplify() *Node {
	if n.IsLeaf() {
		return n
	}
	children := make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		children = append(children, c.Simplify())
	}
	if len(children) == 1 && n.Threshold == 1 {
		return children[0]
	}
	isAnd := n.Threshold == len(children)
	isOr := n.Threshold == 1
	if isAnd || isOr {
		flat := make([]*Node, 0, len(children))
		for _, c := range children {
			sameKind := !c.IsLeaf() &&
				((isAnd && c.Threshold == len(c.Children)) || (isOr && c.Threshold == 1))
			if sameKind {
				flat = append(flat, c.Children...)
			} else {
				flat = append(flat, c)
			}
		}
		t := 1
		if isAnd {
			t = len(flat)
		}
		return &Node{Threshold: t, Children: flat}
	}
	return &Node{Threshold: n.Threshold, Children: children}
}
