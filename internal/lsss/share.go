package lsss

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// ErrNotSatisfied is returned by Reconstruct when the attribute set does not
// satisfy the access structure.
var ErrNotSatisfied = errors.New("lsss: attribute set does not satisfy the access structure")

// Share splits secret s: it draws a random vector v = (s, y₂, …, yₙ) and
// returns the shares λ_i = M_i · v, indexed like the matrix rows.
func (m *Matrix) Share(secret *big.Int, rnd io.Reader) ([]*big.Int, error) {
	v := make([]*big.Int, m.Cols)
	v[0] = new(big.Int).Mod(secret, m.Order)
	for j := 1; j < m.Cols; j++ {
		y, err := rand.Int(rnd, m.Order)
		if err != nil {
			return nil, fmt.Errorf("share randomness: %w", err)
		}
		v[j] = y
	}
	return m.ShareWithVector(v)
}

// ShareWithVector computes λ_i = M_i · v for a caller-chosen vector; the
// secret is v[0]. Exposed for schemes (Lewko) that also need shares of zero
// with correlated randomness, and for deterministic tests.
func (m *Matrix) ShareWithVector(v []*big.Int) ([]*big.Int, error) {
	if len(v) != m.Cols {
		return nil, fmt.Errorf("lsss: vector length %d ≠ %d columns", len(v), m.Cols)
	}
	shares := make([]*big.Int, len(m.Rows))
	for i, row := range m.Rows {
		acc := new(big.Int)
		tmp := new(big.Int)
		for j, c := range row {
			acc.Add(acc, tmp.Mul(c, v[j]))
		}
		shares[i] = acc.Mod(acc, m.Order)
	}
	return shares, nil
}

// Satisfies reports whether the attribute set satisfies the access
// structure.
func (m *Matrix) Satisfies(attrs []string) bool {
	_, err := m.Reconstruct(attrs)
	return err == nil
}

// Reconstruct returns coefficients w indexed by row such that
// Σ_{i : Rho[i] ∈ attrs} w[i]·M_i = (1, 0, …, 0); rows not labelled by attrs
// get no entry. Decryption then computes the secret as Σ w[i]·λ_i.
// It returns ErrNotSatisfied when no such coefficients exist.
func (m *Matrix) Reconstruct(attrs []string) (map[int]*big.Int, error) {
	have := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		have[a] = true
	}
	var idx []int
	for i, a := range m.Rho {
		if have[a] {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil, ErrNotSatisfied
	}
	// Solve wᵀ·M_I = e₁, i.e. (M_I)ᵀ·w = e₁: an m.Cols × len(idx) system.
	rows := m.Cols
	cols := len(idx)
	a := make([][]*big.Int, rows)
	for r := 0; r < rows; r++ {
		a[r] = make([]*big.Int, cols+1)
		for c := 0; c < cols; c++ {
			a[r][c] = new(big.Int).Set(m.Rows[idx[c]][r])
		}
		a[r][cols] = new(big.Int)
	}
	a[0][cols].SetInt64(1)
	sol, err := solve(a, rows, cols, m.Order)
	if err != nil {
		return nil, err
	}
	out := make(map[int]*big.Int, len(idx))
	for c, i := range idx {
		if sol[c].Sign() != 0 {
			out[i] = sol[c]
		}
	}
	if len(out) == 0 {
		// All-zero solution can only happen if e₁ were zero; defensive.
		return nil, ErrNotSatisfied
	}
	return out, nil
}

// solve performs Gaussian elimination on the augmented matrix a (rows ×
// (cols+1)) over Z_order and returns one solution of A·x = b, or
// ErrNotSatisfied if the system is inconsistent. Free variables are set
// to zero.
func solve(a [][]*big.Int, rows, cols int, order *big.Int) ([]*big.Int, error) {
	pivotCol := make([]int, 0, rows)
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		// Find a pivot in column c at or below row r.
		p := -1
		for i := r; i < rows; i++ {
			if a[i][c].Sign() != 0 {
				p = i
				break
			}
		}
		if p == -1 {
			continue
		}
		a[r], a[p] = a[p], a[r]
		inv := new(big.Int).ModInverse(a[r][c], order)
		for j := c; j <= cols; j++ {
			a[r][j].Mul(a[r][j], inv)
			a[r][j].Mod(a[r][j], order)
		}
		for i := 0; i < rows; i++ {
			if i == r || a[i][c].Sign() == 0 {
				continue
			}
			f := new(big.Int).Set(a[i][c])
			tmp := new(big.Int)
			for j := c; j <= cols; j++ {
				tmp.Mul(f, a[r][j])
				a[i][j].Sub(a[i][j], tmp)
				a[i][j].Mod(a[i][j], order)
			}
		}
		pivotCol = append(pivotCol, c)
		r++
	}
	// Inconsistency check: a zero row with nonzero RHS.
	for i := r; i < rows; i++ {
		if a[i][cols].Sign() != 0 {
			return nil, ErrNotSatisfied
		}
	}
	sol := make([]*big.Int, cols)
	for i := range sol {
		sol[i] = new(big.Int)
	}
	for i, c := range pivotCol {
		sol[c].Set(a[i][cols])
	}
	return sol, nil
}
