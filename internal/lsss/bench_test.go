package lsss

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"strings"
	"testing"
)

// benchOrder matches the default pairing group-order size (160 bits).
var benchOrder, _ = new(big.Int).SetString("1240700080266801019348078620562842876609138719753", 10)

// andPolicy builds "a0 AND a1 AND … AND a(n−1)" — the figure workload shape.
func andPolicy(n int) string {
	terms := make([]string, n)
	for i := range terms {
		terms[i] = fmt.Sprintf("x:a%02d", i)
	}
	return strings.Join(terms, " AND ")
}

func benchmarkCompile(b *testing.B, n int) {
	policy := andPolicy(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompilePolicy(policy, benchOrder); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileAnd10(b *testing.B)  { benchmarkCompile(b, 10) }
func BenchmarkCompileAnd50(b *testing.B)  { benchmarkCompile(b, 50) }
func BenchmarkCompileAnd100(b *testing.B) { benchmarkCompile(b, 100) }

func benchmarkShare(b *testing.B, n int) {
	m, err := CompilePolicy(andPolicy(n), benchOrder)
	if err != nil {
		b.Fatal(err)
	}
	secret := big.NewInt(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Share(secret, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShare10(b *testing.B)  { benchmarkShare(b, 10) }
func BenchmarkShare100(b *testing.B) { benchmarkShare(b, 100) }

func benchmarkReconstruct(b *testing.B, n int) {
	m, err := CompilePolicy(andPolicy(n), benchOrder)
	if err != nil {
		b.Fatal(err)
	}
	attrs := append([]string(nil), m.Rho...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Reconstruct(attrs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct10(b *testing.B)  { benchmarkReconstruct(b, 10) }
func BenchmarkReconstruct100(b *testing.B) { benchmarkReconstruct(b, 100) }

func BenchmarkParseComplexPolicy(b *testing.B) {
	policy := "(a AND b) OR 3 of (c, d, e AND f, g OR h, i) AND (j OR k)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(policy); err != nil {
			b.Fatal(err)
		}
	}
}
