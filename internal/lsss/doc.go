// Package lsss implements linear secret sharing schemes (LSSS) over Z_r for
// monotone boolean access policies, as required by CP-ABE encryption.
//
// A policy is written in a small expression language over attribute names:
//
//	AID1:doctor AND (AID2:researcher OR AID2:nurse)
//	2 of (A:x, B:y, C:z)
//
// with operators AND, OR (case-insensitive), parentheses, and k-of-n
// threshold gates "k of (e₁, …, eₙ)". The parser produces an access tree,
// which is compiled into a monotone span program: an l×n matrix M over Z_r
// together with a row-labelling function ρ mapping each row to an attribute.
//
// The compilation uses the standard recursive Vandermonde construction:
// the root is labelled with the vector (1); a (t, n)-threshold node whose
// vector is v (over c columns so far) gives its i-th child (i = 1…n) the
// vector v + Σ_{j=1}^{t−1} i^j·e_{c+j}, appending t−1 fresh columns. AND is
// (n, n) and OR is (1, n). This reproduces Shamir sharing at every gate, so
// an attribute set S satisfies the policy iff (1, 0, …, 0) is in the span of
// the rows labelled by S, which Reconstruct solves by Gaussian elimination.
//
// Per the paper's restriction, ρ must be injective: an attribute may appear
// at most once in a policy (ErrDuplicateAttribute otherwise).
package lsss
