package lsss

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestEvaluateMatchesSatisfies(t *testing.T) {
	policies := []string{
		"a",
		"a AND b",
		"a OR b AND c",
		"2 of (a, b, c)",
		"(a OR b) AND 2 of (c, d, e)",
		"3 of (a, b, c AND d, e)",
	}
	universe := []string{"a", "b", "c", "d", "e"}
	for _, policy := range policies {
		root, err := Parse(policy)
		if err != nil {
			t.Fatal(err)
		}
		m := compile(t, policy)
		for mask := 0; mask < 32; mask++ {
			var attrs []string
			for i, a := range universe {
				if mask&(1<<i) != 0 {
					attrs = append(attrs, a)
				}
			}
			if root.Evaluate(attrs) != m.Satisfies(attrs) {
				t.Fatalf("%q on %v: Evaluate and Satisfies disagree", policy, attrs)
			}
		}
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	policies := []string{
		"a AND (b AND (c AND d))",
		"a OR (b OR (c OR d))",
		"(a AND b) OR (c AND (d OR e))",
		"2 of (a, b OR (c OR d), e)",
		"((a))",
	}
	universe := []string{"a", "b", "c", "d", "e"}
	for _, policy := range policies {
		root, err := Parse(policy)
		if err != nil {
			t.Fatal(err)
		}
		simplified := root.Simplify()
		if err := simplified.validate(); err != nil {
			t.Fatalf("%q: simplified tree invalid: %v", policy, err)
		}
		for mask := 0; mask < 32; mask++ {
			var attrs []string
			for i, a := range universe {
				if mask&(1<<i) != 0 {
					attrs = append(attrs, a)
				}
			}
			if root.Evaluate(attrs) != simplified.Evaluate(attrs) {
				t.Fatalf("%q on %v: simplify changed semantics", policy, attrs)
			}
		}
	}
}

func TestSimplifyFlattens(t *testing.T) {
	root, err := Parse("a AND (b AND (c AND d))")
	if err != nil {
		t.Fatal(err)
	}
	s := root.Simplify()
	if len(s.Children) != 4 || s.Threshold != 4 {
		t.Fatalf("not flattened: %s", s)
	}
	root, err = Parse("a OR (b OR c)")
	if err != nil {
		t.Fatal(err)
	}
	s = root.Simplify()
	if len(s.Children) != 3 || s.Threshold != 1 {
		t.Fatalf("not flattened: %s", s)
	}
}

// randomPolicy builds a random access tree over the universe; used by the
// randomized agreement test below.
func randomPolicy(rng *rand.Rand, universe []string, depth int) *Node {
	if depth == 0 || rng.Intn(3) == 0 {
		return Leaf(universe[rng.Intn(len(universe))])
	}
	n := 2 + rng.Intn(3)
	children := make([]*Node, n)
	for i := range children {
		children[i] = randomPolicy(rng, universe, depth-1)
	}
	t := 1 + rng.Intn(n)
	return Threshold(t, children...)
}

// dedupeAttrs renames duplicate leaves so ρ stays injective while keeping a
// mapping back to base attributes for evaluation.
func dedupeAttrs(root *Node) {
	count := map[string]int{}
	root.walk(func(leaf *Node) {
		count[leaf.Attr]++
		if count[leaf.Attr] > 1 {
			leaf.Attr = fmt.Sprintf("%s_%d", leaf.Attr, count[leaf.Attr])
		}
	})
}

func TestRandomPoliciesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 60; trial++ {
		root := randomPolicy(rng, base, 3)
		dedupeAttrs(root)
		m, err := Compile(root, testOrder)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, root, err)
		}
		// Random subsets of the (deduped) leaves.
		leaves := root.Attributes()
		for s := 0; s < 16; s++ {
			var attrs []string
			for _, a := range leaves {
				if rng.Intn(2) == 0 {
					attrs = append(attrs, a)
				}
			}
			want := root.Evaluate(attrs)
			if got := m.Satisfies(attrs); got != want {
				t.Fatalf("trial %d (%s) on %v: matrix=%v tree=%v",
					trial, root, attrs, got, want)
			}
		}
	}
}

func TestRandomPolicyStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := []string{"x", "y", "z"}
	for trial := 0; trial < 40; trial++ {
		root := randomPolicy(rng, base, 2)
		dedupeAttrs(root)
		rendered := root.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("trial %d: re-parse %q: %v", trial, rendered, err)
		}
		if !strings.EqualFold(back.String(), rendered) {
			t.Fatalf("trial %d: unstable rendering %q vs %q", trial, rendered, back.String())
		}
	}
}
