package lsss_test

import (
	"fmt"
	"log"
	"math/big"

	"maacs/internal/lsss"
)

// ExampleParse shows the policy language: AND/OR with the usual precedence
// and k-of-n threshold gates.
func ExampleParse() {
	node, err := lsss.Parse("med:doctor AND (trial:researcher OR 2 of (a:x, b:y, c:z))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(node)
	fmt.Println(node.Evaluate([]string{"med:doctor", "a:x", "c:z"}))
	fmt.Println(node.Evaluate([]string{"med:doctor", "a:x"}))
	// Output:
	// (med:doctor AND (trial:researcher OR 2 of (a:x, b:y, c:z)))
	// true
	// false
}

// ExampleMatrix_Reconstruct shows secret sharing over a compiled policy: the
// shares of an authorized set recombine to the secret.
func ExampleMatrix_Reconstruct() {
	order := big.NewInt(1000003)
	m, err := lsss.CompilePolicy("a AND (b OR c)", order)
	if err != nil {
		log.Fatal(err)
	}
	secret := big.NewInt(42)
	// Deterministic share vector for the example: v = (secret, 7).
	shares, err := m.ShareWithVector([]*big.Int{secret, big.NewInt(7)})
	if err != nil {
		log.Fatal(err)
	}
	w, err := m.Reconstruct([]string{"a", "c"})
	if err != nil {
		log.Fatal(err)
	}
	sum := new(big.Int)
	for i, wi := range w {
		sum.Add(sum, new(big.Int).Mul(wi, shares[i]))
	}
	sum.Mod(sum, order)
	fmt.Println(sum)
	// Output:
	// 42
}
