package lsss

import (
	"fmt"
	mrand "math/rand"
	"strings"
	"testing"
)

func TestMinimalSetsKnownPolicies(t *testing.T) {
	cases := []struct {
		policy string
		want   []string // rendered as comma-joined sorted sets
	}{
		{"a", []string{"a"}},
		{"a AND b", []string{"a,b"}},
		{"a OR b", []string{"a", "b"}},
		{"2 of (a, b, c)", []string{"a,b", "a,c", "b,c"}},
		{"(a OR b) AND c", []string{"a,c", "b,c"}},
		{"a AND (b OR (c AND d))", []string{"a,b", "a,c,d"}},
		// Overlap across children: a appears on both sides of the AND.
		{"2 of (a AND b, a AND c, d)", []string{"a,b,c", "a,b,d", "a,c,d"}},
	}
	for _, tc := range cases {
		root, err := Parse(tc.policy)
		if err != nil {
			t.Fatal(err)
		}
		sets, truncated := root.MinimalSets(0)
		if truncated {
			t.Fatalf("%q: unexpectedly truncated", tc.policy)
		}
		got := make([]string, len(sets))
		for i, s := range sets {
			got[i] = strings.Join(s, ",")
		}
		if strings.Join(got, ";") != strings.Join(tc.want, ";") {
			t.Errorf("%q: got %v, want %v", tc.policy, got, tc.want)
		}
	}
}

// TestMinimalSetsProperties checks, on random policies, that every minimal
// set satisfies the policy, no proper subset does, and the matrix agrees.
func TestMinimalSetsProperties(t *testing.T) {
	rng := mrand.New(mrand.NewSource(99))
	base := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 30; trial++ {
		root := randomPolicy(rng, base, 2)
		dedupeAttrs(root)
		m, err := Compile(root, testOrder)
		if err != nil {
			t.Fatal(err)
		}
		sets, _ := root.MinimalSets(64)
		if len(sets) == 0 {
			t.Fatalf("trial %d (%s): no minimal sets", trial, root)
		}
		for _, s := range sets {
			if !root.Evaluate(s) {
				t.Fatalf("trial %d (%s): minimal set %v does not satisfy", trial, root, s)
			}
			if !m.Satisfies(s) {
				t.Fatalf("trial %d (%s): matrix rejects minimal set %v", trial, root, s)
			}
			for drop := range s {
				sub := append(append([]string{}, s[:drop]...), s[drop+1:]...)
				if root.Evaluate(sub) {
					t.Fatalf("trial %d (%s): %v is not minimal (drop %s still satisfies)",
						trial, root, s, s[drop])
				}
			}
		}
	}
}

func TestMinimalSetsTruncation(t *testing.T) {
	// 5-of-10 has C(10,5) = 252 minimal sets; cap at 10.
	terms := make([]string, 10)
	for i := range terms {
		terms[i] = fmt.Sprintf("x%d", i)
	}
	root, err := Parse("5 of (" + strings.Join(terms, ", ") + ")")
	if err != nil {
		t.Fatal(err)
	}
	sets, truncated := root.MinimalSets(10)
	if !truncated {
		t.Fatal("expected truncation")
	}
	if len(sets) != 10 {
		t.Fatalf("got %d sets, want 10", len(sets))
	}
	full, truncated := root.MinimalSets(0)
	if truncated || len(full) != 252 {
		t.Fatalf("full enumeration: %d sets (truncated=%v), want 252", len(full), truncated)
	}
}
