#!/bin/sh
# Pre-PR gate: vet, build, and race-test the whole module.
# Run from anywhere inside the repository.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race -short ./..."
go test -race -short ./...
echo "== go test -race ./internal/cloud/..."
go test -race -count=1 ./internal/cloud/...
echo "== streaming-batch race gate"
go test -race -count=2 -run 'TestStreamingBatchRace|TestFetchDuringReEncryptNoRace' ./internal/cloud/
echo "== storage race gate: crash recovery + sharded mixed traffic"
go test -race -count=2 -run 'TestFileStoreCrashRecovery|TestShardedStoreMixedRace' ./internal/cloud/
echo "== group-commit race gate: concurrent writers + kill-at-any-point"
go test -race -count=2 -run 'TestFileStoreGroupCommit|TestFileStoreKillAnywhere' ./internal/cloud/
echo "== WAL fault-injection gate: append faults, compaction faults, partial restore"
go test -count=1 -run 'TestFileStoreAppendFaultTruncates|TestFileStoreCompactFault|TestFileStoreCompactionCrashBeforeDelete|TestShardedStoreRestorePartialFailure' ./internal/cloud/
echo "== cloud suite on the file backend (MAACS_STORE=file)"
MAACS_STORE=file go test -count=1 ./internal/cloud/
echo "== cloud suite on the sharded file backend (MAACS_STORE=sharded-file)"
MAACS_STORE=sharded-file go test -count=1 ./internal/cloud/
echo "== load-smoke gate: open-loop harness vs live server, both transports"
go test -race -count=1 -run 'TestMeasureLoadSmoke' ./internal/bench/
echo "== response-cache gate: byte differential + stale-generation hammer (race)"
go test -race -count=2 -run 'TestResponseCacheDifferentialBytes|TestResponseCacheStaleGenerationHammer|TestResponseCacheSingleFlight' ./internal/cloud/
echo "== response-cache alloc pin: zero-alloc steady-state hit path (race off: AllocsPerRun)"
go test -count=1 -run 'TestResponseCacheZeroAllocHit' ./internal/cloud/
echo "== fetchpath bench smoke: cached vs uncached read path"
go test -count=1 -run 'TestMeasureFetchPathSmoke' ./internal/bench/
echo "== histogram-exposition lint: /metrics le-buckets well formed"
go test -count=1 -run 'TestPrometheusHistogram' ./internal/cloud/
echo "== go test -race ./internal/pairing"
go test -race -count=1 ./internal/pairing
echo "== table/comb differential race gate: all kernels through FixedBaseExp/ExpTable"
go test -race -count=2 -run 'TestTableExp|TestFixedBaseExp|TestPrepareExpMatchesExp|TestScalarNormalization' ./internal/pairing
go test -race -count=2 -run 'TestExpCache' ./internal/engine
echo "== alloc pins: comb evaluation + field primitives (race off: AllocsPerRun)"
go test -count=1 -run 'TestCombExpMontAllocs|TestHotPathZeroBigIntAllocs' ./internal/pairing
echo "== bench smoke: pairing kernels"
go test -run=NoTests -bench=Pair -benchtime=1x ./internal/pairing
echo "== fuzz smoke: Montgomery field vs math/big"
go test -run=NoTests -fuzz=FuzzFpMontgomery -fuzztime=5s ./internal/pairing
echo "== fuzz smoke: Lehmer inversion vs Fermat and ModInverse"
go test -run=NoTests -fuzz=FuzzFpInvLehmer -fuzztime=5s ./internal/pairing
echo "== OK"
