package maacs_test

import (
	"fmt"
	"log"

	"maacs"
)

// Example walks the full lifecycle: setup, enrolment, upload, download,
// revocation. It uses the fast demo parameters; production code calls
// maacs.NewEnvironment() instead.
func Example() {
	env := maacs.NewDemoEnvironment()

	med, err := env.AddAuthority("med", []string{"doctor", "nurse"})
	if err != nil {
		log.Fatal(err)
	}
	hospital, err := env.AddOwner("hospital")
	if err != nil {
		log.Fatal(err)
	}
	alice, err := env.AddUser("alice")
	if err != nil {
		log.Fatal(err)
	}
	if err := med.GrantAttributes(alice, []string{"doctor"}); err != nil {
		log.Fatal(err)
	}

	if _, err := hospital.Upload("rec", []maacs.UploadComponent{
		{Label: "note", Data: []byte("take twice daily"), Policy: "med:doctor"},
	}); err != nil {
		log.Fatal(err)
	}
	data, err := alice.Download("rec", "note")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before revocation: %s\n", data)

	if _, err := med.RevokeAttribute("alice", "doctor"); err != nil {
		log.Fatal(err)
	}
	if _, err := alice.Download("rec", "note"); err != nil {
		fmt.Println("after revocation: access denied")
	}

	// Output:
	// before revocation: take twice daily
	// after revocation: access denied
}
