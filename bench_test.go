// Benchmarks regenerating the paper's evaluation (Section VI), one family
// per table/figure. Figures 3 and 4 are parameter sweeps; each benchmark
// pins one point of the sweep so `go test -bench=.` samples the series, and
// cmd/maacs-bench runs the full 2..20 sweeps and prints the paper-style
// tables.
//
// Run with the paper-scale parameters (slow, exact reproduction):
//
//	go test -bench=. -benchmem
//
// The -short flag switches to the small test curve for a fast smoke pass:
//
//	go test -bench=. -short
package maacs

import (
	"crypto/rand"
	"io"
	"os"
	"testing"

	"maacs/internal/bench"
	"maacs/internal/core"
	"maacs/internal/pairing"
)

func benchParams(b *testing.B) *pairing.Params {
	b.Helper()
	if testing.Short() {
		return pairing.Test()
	}
	return pairing.Default()
}

func cfg(b *testing.B, nA, nk int) bench.Config {
	return bench.Config{
		Params:            benchParams(b),
		Authorities:       nA,
		AttrsPerAuthority: nk,
		Rnd:               rand.Reader,
	}
}

// ---- Figure 3(a): encryption time vs number of authorities (n_k = 5) ----

func benchmarkEncryptOurs(b *testing.B, nA, nk int) {
	w, err := bench.SetupOurs(cfg(b, nA, nk))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.Encrypt(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkEncryptLewko(b *testing.B, nA, nk int) {
	w, err := bench.SetupLewko(cfg(b, nA, nk))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.Encrypt(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3aEncryptOursA2(b *testing.B)  { benchmarkEncryptOurs(b, 2, 5) }
func BenchmarkFig3aEncryptOursA8(b *testing.B)  { benchmarkEncryptOurs(b, 8, 5) }
func BenchmarkFig3aEncryptLewkoA2(b *testing.B) { benchmarkEncryptLewko(b, 2, 5) }
func BenchmarkFig3aEncryptLewkoA8(b *testing.B) { benchmarkEncryptLewko(b, 8, 5) }

// ---- Figure 3(b): decryption time vs number of authorities (n_k = 5) ----

func benchmarkDecryptOurs(b *testing.B, nA, nk int) {
	w, err := bench.SetupOurs(cfg(b, nA, nk))
	if err != nil {
		b.Fatal(err)
	}
	ct, _, err := w.Encrypt()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkDecryptLewko(b *testing.B, nA, nk int) {
	w, err := bench.SetupLewko(cfg(b, nA, nk))
	if err != nil {
		b.Fatal(err)
	}
	ct, _, err := w.Encrypt()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3bDecryptOursA2(b *testing.B)  { benchmarkDecryptOurs(b, 2, 5) }
func BenchmarkFig3bDecryptOursA8(b *testing.B)  { benchmarkDecryptOurs(b, 8, 5) }
func BenchmarkFig3bDecryptLewkoA2(b *testing.B) { benchmarkDecryptLewko(b, 2, 5) }
func BenchmarkFig3bDecryptLewkoA8(b *testing.B) { benchmarkDecryptLewko(b, 8, 5) }

// ---- Figure 4(a): encryption time vs attributes per authority (n_A = 5) ----

func BenchmarkFig4aEncryptOursK2(b *testing.B)  { benchmarkEncryptOurs(b, 5, 2) }
func BenchmarkFig4aEncryptOursK8(b *testing.B)  { benchmarkEncryptOurs(b, 5, 8) }
func BenchmarkFig4aEncryptLewkoK2(b *testing.B) { benchmarkEncryptLewko(b, 5, 2) }
func BenchmarkFig4aEncryptLewkoK8(b *testing.B) { benchmarkEncryptLewko(b, 5, 8) }

// ---- Figure 4(b): decryption time vs attributes per authority (n_A = 5) ----

func BenchmarkFig4bDecryptOursK2(b *testing.B)  { benchmarkDecryptOurs(b, 5, 2) }
func BenchmarkFig4bDecryptOursK8(b *testing.B)  { benchmarkDecryptOurs(b, 5, 8) }
func BenchmarkFig4bDecryptLewkoK2(b *testing.B) { benchmarkDecryptLewko(b, 5, 2) }
func BenchmarkFig4bDecryptLewkoK8(b *testing.B) { benchmarkDecryptLewko(b, 5, 8) }

// ---- Tables II/III/IV: component sizes and per-entity storage ----

// BenchmarkTable2ComponentSizes measures every component size the paper's
// Tables II–IV list and reports them as benchmark metrics (bytes).
func BenchmarkTable2ComponentSizes(b *testing.B) {
	c := cfg(b, 5, 5)
	var r *bench.SizeReport
	var err error
	for i := 0; i < b.N; i++ {
		r, err = bench.MeasureSizes(c)
		if err != nil {
			b.Fatal(err)
		}
	}
	if ok, verdicts := r.CheckSizeShapes(); !ok {
		b.Fatalf("size shapes violated: %v", verdicts)
	}
	b.ReportMetric(float64(r.OursCiphertext), "ours-ct-bytes")
	b.ReportMetric(float64(r.LewkoCiphertext), "lewko-ct-bytes")
	b.ReportMetric(float64(r.OursSecretKey), "ours-sk-bytes")
	b.ReportMetric(float64(r.LewkoSecretKey), "lewko-sk-bytes")
}

// ---- Revocation (Section V-C efficiency claims) ----

// BenchmarkRevocationOursVsBaselines times one full revocation round over a
// corpus of stored ciphertexts: the paper's ReKey + proxy ReEncrypt against
// naive full re-encryption and the Hur trusted-server baseline.
func BenchmarkRevocationOursVsBaselines(b *testing.B) {
	c := cfg(b, 2, 3)
	var res *bench.RevocationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = bench.MeasureRevocation(c, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Total().Microseconds()), "ours-total-µs")
	b.ReportMetric(float64(res.NaiveOwner.Microseconds()), "naive-µs")
	b.ReportMetric(float64(res.HurServer.Microseconds()), "hur-µs")
}

// BenchmarkReEncryptServer isolates the server's proxy re-encryption of one
// ciphertext (the partial, decryption-free step).
func BenchmarkReEncryptServer(b *testing.B) {
	ours, err := bench.SetupOurs(cfg(b, 2, 5))
	if err != nil {
		b.Fatal(err)
	}
	ct, _, err := ours.Encrypt()
	if err != nil {
		b.Fatal(err)
	}
	fromV, _, err := ours.AAs[0].Rekey(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	uk, err := ours.AAs[0].UpdateKeyFor(ours.Owner.SecretKeyForAAs(), fromV)
	if err != nil {
		b.Fatal(err)
	}
	ui, err := ours.Owner.UpdateInfoFor(ct, uk)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ReEncrypt(ours.Sys, ct, ui, uk); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation: faithful Eq. 1 decryption vs aggregated multi-pairing ----

func BenchmarkAblationDecryptEq1(b *testing.B) { benchmarkDecryptOurs(b, 5, 5) }

func BenchmarkAblationDecryptFast(b *testing.B) {
	w, err := bench.SetupOurs(cfg(b, 5, 5))
	if err != nil {
		b.Fatal(err)
	}
	ct, _, err := w.Encrypt()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.DecryptFast(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDecryptPrepared(b *testing.B) {
	w, err := bench.SetupOurs(cfg(b, 5, 5))
	if err != nil {
		b.Fatal(err)
	}
	ct, _, err := w.Encrypt()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.DecryptPrepared(ct); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Pairing substrate microbenchmarks ----

func BenchmarkPairing(b *testing.B) {
	p := benchParams(b)
	g := p.Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MustPair(g, g)
	}
}

func BenchmarkGExp(b *testing.B) {
	p := benchParams(b)
	g := p.Generator()
	k, err := p.RandomScalar(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Exp(k)
	}
}

func BenchmarkGTExp(b *testing.B) {
	p := benchParams(b)
	e := p.GTGenerator()
	k, err := p.RandomScalar(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Exp(k)
	}
}

// BenchmarkTable1Scalability renders the qualitative Table I (no timing —
// kept as a benchmark so -bench=Table regenerates every table).
func BenchmarkTable1Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1(io.Discard)
	}
	if os.Getenv("MAACS_PRINT_TABLES") != "" {
		bench.Table1(os.Stdout)
	}
}
