// Command maacs-demo narrates the paper's running example end to end: a
// hospital (data owner) shares a patient record with components guarded by
// policies over two independent authorities, users with different attribute
// sets see different granularities, and an attribute revocation plays out
// through key update and server-side proxy re-encryption.
//
// Usage:
//
//	maacs-demo          # paper-scale parameters (a few seconds)
//	maacs-demo -fast    # small test curve (instant)
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"os"

	"maacs/internal/cloud"
	"maacs/internal/core"
	"maacs/internal/pairing"
)

func main() {
	fast := flag.Bool("fast", false, "use the small test curve")
	flag.Parse()
	if err := run(*fast, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "maacs-demo:", err)
		os.Exit(1)
	}
}

func run(fast bool, out io.Writer) error {
	params := pairing.Default()
	if fast {
		params = pairing.Test()
	}
	env := cloud.NewEnv(core.NewSystem(params), rand.Reader)

	fmt.Fprintln(out, "== Setup: CA, two independent authorities, one owner ==")
	med, err := env.AddAuthority("med", []string{"doctor", "nurse"})
	if err != nil {
		return err
	}
	trial, err := env.AddAuthority("trial", []string{"researcher", "admin"})
	if err != nil {
		return err
	}
	hospital, err := env.AddOwner("hospital")
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "   authorities: med{doctor,nurse}, trial{researcher,admin}")

	fmt.Fprintln(out, "== Enrolment ==")
	alice, err := env.AddUser("dr-alice")
	if err != nil {
		return err
	}
	if err := med.GrantAttributes(alice, []string{"doctor"}); err != nil {
		return err
	}
	if err := trial.GrantAttributes(alice, []string{"researcher"}); err != nil {
		return err
	}
	nurse, err := env.AddUser("nurse-bob")
	if err != nil {
		return err
	}
	if err := med.GrantAttributes(nurse, []string{"nurse"}); err != nil {
		return err
	}
	if err := trial.GrantAttributes(nurse, nil); err != nil {
		return err
	}
	fmt.Fprintln(out, "   dr-alice: med:doctor + trial:researcher; nurse-bob: med:nurse")

	fmt.Fprintln(out, "== Upload (Fig. 2 record format) ==")
	if _, err := hospital.Upload("patient-7", []cloud.UploadComponent{
		{Label: "name", Data: []byte("Alice Liddell"), Policy: "med:doctor OR med:nurse"},
		{Label: "diagnosis", Data: []byte("hypertension"), Policy: "med:doctor"},
		{Label: "trial-data", Data: []byte("cohort B, responder"), Policy: "med:doctor AND trial:researcher"},
	}); err != nil {
		return err
	}
	fmt.Fprintln(out, "   3 components, each with its own content key + CP-ABE ciphertext")

	fmt.Fprintln(out, "== Fine-grained download ==")
	for _, u := range []*cloud.UserClient{alice, nurse} {
		visible, err := u.DownloadRecord("patient-7")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "   %s sees %d/3 components: ", u.PK.UID, len(visible))
		for label := range visible {
			fmt.Fprintf(out, "%s ", label)
		}
		fmt.Fprintln(out)
	}

	fmt.Fprintln(out, "== Revocation: dr-alice loses med:doctor ==")
	report, err := med.RevokeAttribute("dr-alice", "doctor")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "   version %d→%d, %d users updated, %d ciphertexts proxy-re-encrypted (%d rows)\n",
		report.NewVersion-1, report.NewVersion, report.UsersUpdated, report.CiphertextsHit, report.RowsReencrypted)
	visible, err := alice.DownloadRecord("patient-7")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "   dr-alice now sees %d/3 components\n", len(visible))
	if len(visible) != 0 {
		return fmt.Errorf("revocation failed: alice still sees %d components", len(visible))
	}
	visible, err = nurse.DownloadRecord("patient-7")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "   nurse-bob still sees %d/3 components\n", len(visible))

	fmt.Fprintln(out, "== Communication accounting (Table IV channels) ==")
	for _, ch := range env.Acct.Channels() {
		fmt.Fprintf(out, "   %-14s %8d bytes in %d messages\n", ch, env.Acct.Bytes(ch), env.Acct.Messages(ch))
	}
	return nil
}
