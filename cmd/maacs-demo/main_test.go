package main

import (
	"strings"
	"testing"
)

// TestDemoRunsEndToEnd drives the narrated demo on the fast curve and
// checks the key outcome lines.
func TestDemoRunsEndToEnd(t *testing.T) {
	var sb strings.Builder
	if err := run(true, &sb); err != nil {
		t.Fatalf("demo failed: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"dr-alice sees 3/3 components",
		"nurse-bob sees 1/3 components",
		"dr-alice now sees 0/3 components",
		"nurse-bob still sees 1/3 components",
		"Communication accounting",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("demo output missing %q:\n%s", want, out)
		}
	}
}
