// Command maacs-paramgen generates fresh Type-A pairing parameters and
// prints them as decimal constants suitable for internal/pairing/default.go.
//
// Usage:
//
//	maacs-paramgen              # 160-bit order / 512-bit field (paper scale)
//	maacs-paramgen -r 48 -q 96  # custom sizes (e.g. fast test parameters)
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"os"

	"maacs/internal/pairing"
)

func main() {
	rBits := flag.Int("r", 160, "bit length of the prime group order")
	qBits := flag.Int("q", 512, "approximate bit length of the base field prime")
	flag.Parse()
	if err := run(*rBits, *qBits, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "maacs-paramgen:", err)
		os.Exit(1)
	}
}

func run(rBits, qBits int, out io.Writer) error {
	p, err := pairing.GenerateParams(rBits, qBits, rand.Reader)
	if err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}
	q, r, h, gx, gy := p.Export()
	fmt.Fprintf(out, "// r: %d bits, q: %d bits\n", p.R.BitLen(), p.Q.BitLen())
	fmt.Fprintf(out, "Q  = %q\n", q)
	fmt.Fprintf(out, "R  = %q\n", r)
	fmt.Fprintf(out, "H  = %q\n", h)
	fmt.Fprintf(out, "GX = %q\n", gx)
	fmt.Fprintf(out, "GY = %q\n", gy)
	return nil
}
