package main

import (
	"strings"
	"testing"
)

func TestParamgenProducesValidConstants(t *testing.T) {
	var sb strings.Builder
	if err := run(40, 80, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"r: 40 bits", "Q  =", "R  =", "H  =", "GX =", "GY ="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestParamgenRejectsBadSizes(t *testing.T) {
	var sb strings.Builder
	if err := run(8, 16, &sb); err == nil {
		t.Fatal("tiny sizes accepted")
	}
}
