package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchToolSmoke runs the whole tool on the fast curve with a minimal
// sweep and checks every experiment section renders with a shape verdict.
// The JSON reports go to a temp dir so the test never overwrites the
// committed BENCH_*.json artifacts with fast-curve numbers.
func TestBenchToolSmoke(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	err := run([]string{"-fast", "-points", "2,3", "-trials", "1", "-fixed", "2", "-ciphertexts", "2",
		"-engine-json", filepath.Join(dir, "engine.json"),
		"-reencrypt-json", filepath.Join(dir, "reencrypt.json"),
		"-shardiso-json", filepath.Join(dir, "shardiso.json"),
		"-pairing-json", filepath.Join(dir, "pairing.json"),
		"-walcommit-json", filepath.Join(dir, "walcommit.json"),
		"-load-json", filepath.Join(dir, "load.json"),
		"-load-duration", "100ms", "-load-rates", "80",
		"-load-owners", "2", "-load-users", "2", "-load-records", "2",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table I", "Table II", "Table III", "Table IV", "measured live",
		"Fig3a", "Fig3b", "Fig4a", "Fig4b", "shape:",
		"Revocation", "pirretti", "Ablation", "pairing_pp",
		"key-distribution cost vs population",
		"open-loop load", "wrote " + filepath.Join(dir, "load.json"),
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

// TestBenchToolRejectsUnknownMode pins the -what contract: an experiment
// name not on the canonical list must be an error naming the valid set, not
// a silent run-nothing success (the old behaviour).
func TestBenchToolRejectsUnknownMode(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-fast", "-what", "tables,walcomit"}, &sb)
	if err == nil {
		t.Fatal("unknown -what mode accepted")
	}
	for _, want := range []string{`"walcomit"`, "valid:", "walcommit", "load"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestBenchToolRejectsBadPoints(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fast", "-points", "2,zero"}, &sb); err == nil {
		t.Fatal("bad points accepted")
	}
}
