package main

import (
	"strings"
	"testing"
)

// TestBenchToolSmoke runs the whole tool on the fast curve with a minimal
// sweep and checks every experiment section renders with a shape verdict.
func TestBenchToolSmoke(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-fast", "-points", "2,3", "-trials", "1", "-fixed", "2", "-ciphertexts", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table I", "Table II", "Table III", "Table IV", "measured live",
		"Fig3a", "Fig3b", "Fig4a", "Fig4b", "shape:",
		"Revocation", "pirretti", "Ablation", "pairing_pp",
		"key-distribution cost vs population",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestBenchToolRejectsBadPoints(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fast", "-points", "2,zero"}, &sb); err == nil {
		t.Fatal("bad points accepted")
	}
}
