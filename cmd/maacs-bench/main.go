// Command maacs-bench regenerates the paper's evaluation (Section VI):
// Tables I–IV and the four series of Figures 3 and 4, plus the revocation
// comparison and the decrypt-aggregation ablation.
//
// Usage:
//
//	maacs-bench                     # everything, paper-scale parameters
//	maacs-bench -what tables        # only Tables I–IV
//	maacs-bench -what fig3,fig4     # only the timing figures
//	maacs-bench -what revocation    # only the revocation experiment
//	maacs-bench -what reencrypt-batch  # per-ciphertext vs batched submission
//	maacs-bench -what shardiso      # cross-owner fetch latency, mem vs sharded
//	maacs-bench -what walcommit     # durable put throughput + fsyncs/op vs writers
//	maacs-bench -what load          # open-loop load vs a live server, both transports
//	maacs-bench -what load -load-mix fetch=60,fetch_component=30,store=5,delete=3,reencrypt=1,revoke=1
//	maacs-bench -what fetchpath     # cached vs uncached serving cost of the read path
//	maacs-bench -points 2,5,8 -trials 3
//	maacs-bench -fast               # small test curve (CI smoke run)
//	maacs-bench -csv dir            # also write CSV series into dir
//
// Absolute times depend on the host; the paper's claims are about shapes
// (who wins, linear growth), which the tool checks and reports explicitly.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"maacs/internal/bench"
	"maacs/internal/pairing"
)

// benchModes is the canonical list of experiments -what accepts. A mode not
// on this list is an error, not a silent no-op: the old behaviour of
// ignoring unknown names let typos (and stale scripts naming removed
// experiments) report success while running nothing.
var benchModes = []string{
	"tables", "fig3", "fig4", "revocation", "ablation", "scale", "engine",
	"reencrypt-batch", "shardiso", "walcommit", "pairing", "load", "fetchpath",
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "maacs-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("maacs-bench", flag.ContinueOnError)
	what := fs.String("what", strings.Join(benchModes, ","), "comma-separated experiments to run")
	points := fs.String("points", "2,5,8,11,14,17,20", "sweep values for the figures (paper: 2..20)")
	fixed := fs.Int("fixed", 5, "value of the non-swept axis (paper: 5)")
	trials := fs.Int("trials", 2, "trials per sweep point (paper: 20)")
	ciphertexts := fs.Int("ciphertexts", 4, "stored ciphertexts in the revocation experiment")
	fast := fs.Bool("fast", false, "use the small test curve instead of paper-scale parameters")
	csvDir := fs.String("csv", "", "directory to write CSV series into (optional)")
	engineJSON := fs.String("engine-json", "BENCH_engine.json", "output path for the engine serial-vs-parallel report")
	reencryptJSON := fs.String("reencrypt-json", "BENCH_reencrypt.json", "output path for the batched re-encryption report")
	batchWindow := fs.Int("batch-window", 4, "window size for the windowed re-encryption submissions (0 = unwindowed)")
	shardisoJSON := fs.String("shardiso-json", "BENCH_shardiso.json", "output path for the shard-isolation report")
	shards := fs.Int("shards", 4, "shard count for the shard-isolation experiment")
	pairingJSON := fs.String("pairing-json", "BENCH_pairing.json", "output path for the three-kernel pairing report (montgomery/projective/reference)")
	walcommitJSON := fs.String("walcommit-json", "BENCH_walcommit.json", "output path for the WAL group-commit report")
	walOps := fs.Int("wal-ops", 256, "durable puts per writer in the WAL group-commit experiment")
	walSegment := fs.Int64("wal-segment-bytes", 256<<10, "WAL segment rotation threshold during the group-commit experiment")
	loadJSON := fs.String("load-json", "BENCH_load.json", "output path for the open-loop load report")
	loadDuration := fs.Duration("load-duration", 2*time.Second, "driving time per load point")
	loadRates := fs.String("load-rates", "25,50,100,200", "offered rates (ops/sec) of the load saturation sweep")
	loadOwners := fs.Int("load-owners", 4, "simulated data owners in the load population")
	loadUsers := fs.Int("load-users", 8, "simulated users in the load population")
	loadRecords := fs.Int("load-records", 6, "durable records per owner in the load population")
	loadTransports := fs.String("load-transports", "rpc,http", "transports the load sweep drives")
	loadProcs := fs.String("load-procs", "", "GOMAXPROCS values to sweep at the highest load rate (empty = skip)")
	loadMix := fs.String("load-mix", "", "op mix for the load sweep as op=weight pairs (empty = built-in default mix)")
	fetchpathJSON := fs.String("fetchpath-json", "BENCH_fetchpath.json", "output path for the cached-vs-uncached read-path report")
	fetchpathIters := fs.Int("fetchpath-iters", 0, "timed iterations per fetchpath row (0 = built-in default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := pairing.Default()
	if *fast {
		params = pairing.Test()
	}
	xs, err := parsePoints(*points)
	if err != nil {
		return err
	}
	spec := bench.SweepSpec{Params: params, Rnd: rand.Reader, Xs: xs, Fixed: *fixed, Trials: *trials}
	valid := make(map[string]bool, len(benchModes))
	for _, m := range benchModes {
		valid[m] = true
	}
	want := make(map[string]bool)
	for _, w := range strings.Split(*what, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !valid[w] {
			return fmt.Errorf("unknown -what %q (valid: %s)", w, strings.Join(benchModes, ", "))
		}
		want[w] = true
	}

	fmt.Fprintf(out, "maacs-bench: |r|=%d bits, |q|=%d bits, points=%v, fixed=%d, trials=%d\n\n",
		params.R.BitLen(), params.Q.BitLen(), xs, *fixed, *trials)

	if want["tables"] {
		cfg := bench.Config{Params: params, Authorities: *fixed, AttrsPerAuthority: *fixed, Rnd: rand.Reader}
		report, err := bench.MeasureSizes(cfg)
		if err != nil {
			return fmt.Errorf("tables: %w", err)
		}
		fmt.Fprintln(out, report.RenderAll())
		_, verdicts := report.CheckSizeShapes()
		for _, v := range verdicts {
			fmt.Fprintln(out, "  shape:", v)
		}
		fmt.Fprintln(out)
		acct, err := bench.LiveTable4(cfg)
		if err != nil {
			return fmt.Errorf("live table 4: %w", err)
		}
		bench.RenderLiveTable4(out, acct, cfg)
		fmt.Fprintln(out)
	}

	runSweep := func(name string, sweep func(bench.SweepSpec, bool) (*bench.Series, *bench.Series, error)) error {
		enc, dec, err := sweep(spec, true)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for _, s := range []*bench.Series{enc, dec} {
			s.Render(out)
			op := bench.OpEncrypt
			if s == dec {
				op = bench.OpDecrypt
			}
			_, verdict := s.CheckShape(op)
			fmt.Fprintln(out, "  shape:", verdict)
			fmt.Fprintln(out)
			s.Plot(out, 12)
			fmt.Fprintln(out)
			if *csvDir != "" {
				path := filepath.Join(*csvDir, s.Name+".csv")
				if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(out, "  wrote %s\n", path)
			}
		}
		return nil
	}

	if want["fig3"] {
		if err := runSweep("fig3", sweepFig3); err != nil {
			return err
		}
	}
	if want["fig4"] {
		if err := runSweep("fig4", sweepFig4); err != nil {
			return err
		}
	}

	if want["revocation"] {
		cfg := bench.Config{Params: params, Authorities: 2, AttrsPerAuthority: *fixed, Rnd: rand.Reader}
		res, err := bench.MeasureRevocation(cfg, *ciphertexts)
		if err != nil {
			return fmt.Errorf("revocation: %w", err)
		}
		res.Render(out)
		_, verdict := res.CheckShape()
		fmt.Fprintln(out, "  shape:", verdict)
		fmt.Fprintln(out)
	}

	if want["ablation"] {
		if err := ablation(out, params, *fixed); err != nil {
			return fmt.Errorf("ablation: %w", err)
		}
	}

	if want["scale"] {
		points := bench.ScaleSweep(params, []int{8, 64, 512, 4096, 32768}, *fixed)
		bench.RenderScale(out, points, *fixed)
		fmt.Fprintln(out)
	}

	if want["engine"] {
		report, err := bench.MeasureEngine(params, rand.Reader, []int{2, 4, 6, 8, 10}, *trials, *ciphertexts*2)
		if err != nil {
			return fmt.Errorf("engine: %w", err)
		}
		report.Render(out)
		f, err := os.Create(*engineJSON)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n\n", *engineJSON)
	}

	if want["reencrypt-batch"] {
		report, err := bench.MeasureReEncryptBatch(params, rand.Reader, []int{2, 4, 8, 16}, *fixed, *trials, *batchWindow)
		if err != nil {
			return fmt.Errorf("reencrypt-batch: %w", err)
		}
		report.Render(out)
		f, err := os.Create(*reencryptJSON)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n\n", *reencryptJSON)
	}

	if want["shardiso"] {
		report, err := bench.MeasureShardIsolation(params, rand.Reader, *ciphertexts, *shards, *trials)
		if err != nil {
			return fmt.Errorf("shardiso: %w", err)
		}
		report.Render(out)
		f, err := os.Create(*shardisoJSON)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n\n", *shardisoJSON)
	}

	if want["walcommit"] {
		dir, err := os.MkdirTemp("", "maacs-walcommit-")
		if err != nil {
			return err
		}
		report, err := bench.MeasureWALCommit(params, rand.Reader, dir, *walOps, *walSegment, []int{1, 4, 16})
		os.RemoveAll(dir)
		if err != nil {
			return fmt.Errorf("walcommit: %w", err)
		}
		report.Render(out)
		f, err := os.Create(*walcommitJSON)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n\n", *walcommitJSON)
	}

	if want["load"] {
		rates, err := parseRates(*loadRates)
		if err != nil {
			return fmt.Errorf("load: %w", err)
		}
		var procs []int
		if *loadProcs != "" {
			if procs, err = parsePoints(*loadProcs); err != nil {
				return fmt.Errorf("load: %w", err)
			}
		}
		var transports []string
		for _, tr := range strings.Split(*loadTransports, ",") {
			if tr = strings.TrimSpace(tr); tr != "" {
				transports = append(transports, tr)
			}
		}
		mix, err := parseLoadMix(*loadMix)
		if err != nil {
			return fmt.Errorf("load: %w", err)
		}
		report, err := bench.MeasureLoad(bench.LoadSpec{
			Params:          params,
			Rnd:             rand.Reader,
			Owners:          *loadOwners,
			Users:           *loadUsers,
			RecordsPerOwner: *loadRecords,
			Duration:        *loadDuration,
			Rates:           rates,
			Transports:      transports,
			Procs:           procs,
			Window:          *batchWindow,
			Mix:             mix,
		})
		if err != nil {
			return fmt.Errorf("load: %w", err)
		}
		report.Render(out)
		f, err := os.Create(*loadJSON)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n\n", *loadJSON)
	}

	if want["fetchpath"] {
		report, err := bench.MeasureFetchPath(bench.FetchPathSpec{
			Params:          params,
			Rnd:             rand.Reader,
			Owners:          *loadOwners,
			RecordsPerOwner: *loadRecords,
			Iters:           *fetchpathIters,
		})
		if err != nil {
			return fmt.Errorf("fetchpath: %w", err)
		}
		report.Render(out)
		f, err := os.Create(*fetchpathJSON)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n\n", *fetchpathJSON)
	}

	if want["pairing"] {
		report, err := bench.MeasurePairing(params, rand.Reader, *fixed, *trials)
		if err != nil {
			return fmt.Errorf("pairing: %w", err)
		}
		report.Render(out)
		f, err := os.Create(*pairingJSON)
		if err != nil {
			return err
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n\n", *pairingJSON)
	}
	return nil
}

func sweepFig3(spec bench.SweepSpec, _ bool) (*bench.Series, *bench.Series, error) {
	enc, err := bench.SweepAuthorities(spec, bench.OpEncrypt)
	if err != nil {
		return nil, nil, err
	}
	dec, err := bench.SweepAuthorities(spec, bench.OpDecrypt)
	if err != nil {
		return nil, nil, err
	}
	return enc, dec, nil
}

func sweepFig4(spec bench.SweepSpec, _ bool) (*bench.Series, *bench.Series, error) {
	enc, err := bench.SweepAttrs(spec, bench.OpEncrypt)
	if err != nil {
		return nil, nil, err
	}
	dec, err := bench.SweepAttrs(spec, bench.OpDecrypt)
	if err != nil {
		return nil, nil, err
	}
	return enc, dec, nil
}

// ablation compares the faithful Eq. 1 decryption against the aggregated
// 3-pairing DecryptFast extension.
func ablation(out io.Writer, params *pairing.Params, n int) error {
	cfg := bench.Config{Params: params, Authorities: n, AttrsPerAuthority: n, Rnd: rand.Reader}
	w, err := bench.SetupOurs(cfg)
	if err != nil {
		return err
	}
	ct, _, err := w.Encrypt()
	if err != nil {
		return err
	}
	slow, err := w.Decrypt(ct)
	if err != nil {
		return err
	}
	prepared, err := w.DecryptPrepared(ct)
	if err != nil {
		return err
	}
	fast, err := w.DecryptFast(ct)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Ablation — decryption with n_A=%d, n_k=%d (l=%d)\n", n, n, n*n)
	fmt.Fprintf(out, "%-46s %14s\n", "Eq. 1 as printed (2l+n_A pairings)", slow)
	fmt.Fprintf(out, "%-46s %14s %6.1fx\n", "Eq. 1 + pairing_pp preprocessing (extension)", prepared, float64(slow)/float64(prepared))
	fmt.Fprintf(out, "%-46s %14s %6.1fx\n", "aggregated multi-pairing (2 Millers, extension)", fast, float64(slow)/float64(fast))
	fmt.Fprintln(out)
	return nil
}

// parseLoadMix parses "fetch=60,store=5,..." into a bench.LoadMix. An empty
// string means the built-in default mix; weight validation (unknown ops,
// negatives) happens inside the load harness.
func parseLoadMix(s string) (bench.LoadMix, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	mix := make(bench.LoadMix)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, weight, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -load-mix entry %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(weight))
		if err != nil {
			return nil, fmt.Errorf("bad -load-mix weight %q", part)
		}
		mix[strings.TrimSpace(op)] = w
	}
	return mix, nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad offered rate %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parsePoints(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad sweep point %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
