// Command maacs-server runs a standalone cloud storage server speaking the
// net/rpc protocol from internal/cloud. It holds no secret key material:
// it stores ciphertexts, serves downloads, and performs proxy
// re-encryption on request — the honest-but-curious server of the paper's
// system model.
//
// Usage:
//
//	maacs-server -addr 127.0.0.1:7744                        # net/rpc only
//	maacs-server -addr 127.0.0.1:7744 -http 127.0.0.1:7745   # + HTTP/JSON gateway
//	maacs-server -addr 127.0.0.1:7744 -fast                  # small test curve
//	maacs-server -addr 127.0.0.1:7744 -workers 8             # engine pool width
//	maacs-server -addr 127.0.0.1:7744 -batch-window 32       # streaming window
//	maacs-server -batch-window 32 -batch-window-target 50ms  # adaptive windows
//	maacs-server -store file -data-dir /var/lib/maacs        # durable records
//	maacs-server -store file -data-dir /var/lib/maacs -shards 8
//	maacs-server -response-cache-bytes 134217728             # read-path cache cap
//	maacs-server -pprof-addr 127.0.0.1:6060                  # profiling endpoints
//
// Storage backends (-store):
//
//	mem   in-memory maps; records live for the process lifetime (default)
//	file  crash-safe file store in -data-dir: segmented append-only WAL
//	      (group commit coalesces concurrent writers into one fsync),
//	      replay on start, background compaction into a snapshot file; a
//	      restarted server serves every previously committed record.
//	      -wal-segment-bytes tunes how large a segment grows before the log
//	      rotates to a fresh wal-%08d.maacs file; -compact-threshold tunes
//	      the total WAL size that wakes the background compactor (both
//	      default to the engine's built-ins: 1 MiB and 4 MiB)
//
// -shards N > 1 stripes either backend per data owner (hash of the owner ID
// picks one of N shards, each with its own lock — and for the file backend
// its own WAL in -data-dir/shard-NNN), so one owner's re-encryption commit
// never blocks another owner's downloads. On SIGINT the server stops
// listening and closes the store, flushing the WAL before exit.
// GET /healthz reports the backend, shard count, WAL size and records
// loaded; RPC clients get the same via CloudServer.Health.
//
// The HTTP gateway additionally serves POST /owners/{id}/reencrypt/batch
// (many update-info sets streamed through bounded engine runs — the window
// caps how many fuse into one run, so huge batches never pin a shard
// lock), GET /metrics (Prometheus text exposition of the cumulative and
// per-owner counters; ?format=json for the JSON body), and sets explicit
// read/write/idle timeouts so one slow client cannot pin a connection
// forever. The matching RPC methods are CloudServer.ReEncryptBatch and
// CloudServer.Metrics.
//
// Clients must be configured with the same pairing parameters (the built-in
// defaults on both sides match).
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only when -pprof-addr is set
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"maacs/internal/cloud"
	"maacs/internal/core"
	"maacs/internal/engine"
	"maacs/internal/pairing"
)

// config carries the flag settings into run.
type config struct {
	addr, httpAddr    string
	fast              bool
	batchWindow       int
	batchWindowTarget time.Duration
	store             string
	dataDir           string
	shards            int
	walSegmentBytes   int64
	compactThreshold  int64
	responseCache     int64
	pprofAddr         string
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7744", "net/rpc address to listen on")
	flag.StringVar(&cfg.httpAddr, "http", "", "optional HTTP/JSON gateway address (e.g. 127.0.0.1:7745)")
	flag.BoolVar(&cfg.fast, "fast", false, "use the small test curve")
	workers := flag.Int("workers", 0, "engine pool width (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.batchWindow, "batch-window", 64,
		"max update-info sets fused into one engine run per batch window (0 = whole batch)")
	flag.DurationVar(&cfg.batchWindowTarget, "batch-window-target", 0,
		"adaptive windowing: grow/shrink windows after the first toward this wall time per window (0 = fixed windows)")
	flag.StringVar(&cfg.store, "store", "mem",
		"storage backend: mem (process-lifetime maps) or file (WAL-backed, crash-safe)")
	flag.StringVar(&cfg.dataDir, "data-dir", "",
		"data directory for -store=file (required; shard WALs live under it)")
	flag.IntVar(&cfg.shards, "shards", 1,
		"per-owner shard stripes over the backend (1 = unsharded)")
	flag.Int64Var(&cfg.walSegmentBytes, "wal-segment-bytes", 0,
		"file store: WAL segment rotation threshold in bytes (0 = engine default)")
	flag.Int64Var(&cfg.compactThreshold, "compact-threshold", 0,
		"file store: total WAL bytes that wake the background compactor (0 = engine default)")
	flag.Int64Var(&cfg.responseCache, "response-cache-bytes", cloud.DefaultResponseCacheBytes,
		"encoded-response cache capacity in bytes; fetches are served from cached renderings until a mutation invalidates them (0 disables)")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "",
		"optional net/http/pprof listen address (e.g. 127.0.0.1:6060); off when empty")
	flag.DurationVar(&cfg.readHeaderTimeout, "read-header-timeout", 5*time.Second,
		"http: max time to read a request's headers")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 2*time.Minute,
		"http: max time to read a whole request")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 10*time.Minute,
		"http: max time from end of header read to end of response write (covers long re-encryptions)")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute,
		"http: max keep-alive idle time")
	flag.Parse()
	engine.SetWorkers(*workers)
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "maacs-server:", err)
		os.Exit(1)
	}
}

// openStore builds the configured storage backend.
func openStore(cfg config, sys *core.System) (cloud.Store, error) {
	if cfg.shards < 1 {
		return nil, fmt.Errorf("-shards must be >= 1, got %d", cfg.shards)
	}
	switch cfg.store {
	case "mem":
		if cfg.shards == 1 {
			return cloud.NewMemStore(), nil
		}
		return cloud.NewShardedMemStore(cfg.shards), nil
	case "file":
		if cfg.dataDir == "" {
			return nil, errors.New("-store=file requires -data-dir")
		}
		openShard := func(dir string) (cloud.Store, error) {
			fstore, err := cloud.OpenFileStore(sys, dir)
			if err != nil {
				return nil, err
			}
			fstore.SetSegmentBytes(cfg.walSegmentBytes)
			fstore.SetCompactThreshold(cfg.compactThreshold)
			return fstore, nil
		}
		if cfg.shards == 1 {
			return openShard(cfg.dataDir)
		}
		return cloud.NewShardedStore(cfg.shards, func(i int) (cloud.Store, error) {
			return openShard(filepath.Join(cfg.dataDir, fmt.Sprintf("shard-%03d", i)))
		})
	default:
		return nil, fmt.Errorf("unknown -store %q (want mem or file)", cfg.store)
	}
}

func run(cfg config) error {
	params := pairing.Default()
	if cfg.fast {
		params = pairing.Test()
	}
	sys := core.NewSystem(params)
	store, err := openStore(cfg, sys)
	if err != nil {
		return err
	}
	server := cloud.NewServerWithStore(sys, cloud.NewAccounting(), store)
	server.SetBatchWindow(cfg.batchWindow)
	server.SetBatchWindowTarget(cfg.batchWindowTarget)
	server.SetResponseCacheBytes(cfg.responseCache)
	if cfg.pprofAddr != "" {
		// The pprof endpoints register on http.DefaultServeMux at import; a
		// dedicated listener keeps them off the public gateway.
		go func() {
			fmt.Printf("maacs-server: pprof on %s\n", cfg.pprofAddr)
			if err := http.ListenAndServe(cfg.pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "maacs-server: pprof:", err)
			}
		}()
	}
	info := server.StoreInfo()
	fmt.Printf("maacs-server: store %s, %d shard(s), %d record(s) loaded, wal %d bytes\n",
		info.Backend, info.Shards, info.Records, info.WALBytes)
	listener, bound, err := cloud.ServeRPC(sys, server, cfg.addr)
	if err != nil {
		store.Close()
		return err
	}
	fmt.Printf("maacs-server: rpc listening on %s (|r|=%d bits, |q|=%d bits)\n",
		bound, params.R.BitLen(), params.Q.BitLen())

	var httpSrv *http.Server
	if cfg.httpAddr != "" {
		httpSrv = &http.Server{
			Addr:              cfg.httpAddr,
			Handler:           cloud.NewHTTPHandler(sys, server),
			ReadHeaderTimeout: cfg.readHeaderTimeout,
			ReadTimeout:       cfg.readTimeout,
			WriteTimeout:      cfg.writeTimeout,
			IdleTimeout:       cfg.idleTimeout,
		}
		go func() {
			fmt.Printf("maacs-server: http gateway on %s (batch window %d)\n", cfg.httpAddr, cfg.batchWindow)
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "maacs-server: http:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("maacs-server: shutting down")
	if httpSrv != nil {
		if err := httpSrv.Close(); err != nil {
			listener.Close()
			server.Close()
			return err
		}
	}
	// Stop accepting work first, then flush: Close fsyncs and releases the
	// WAL, so every committed record is on disk before the process exits.
	if err := listener.Close(); err != nil {
		server.Close()
		return err
	}
	return server.Close()
}
