// Command maacs-server runs a standalone cloud storage server speaking the
// net/rpc protocol from internal/cloud. It holds no secret key material:
// it stores ciphertexts, serves downloads, and performs proxy
// re-encryption on request — the honest-but-curious server of the paper's
// system model.
//
// Usage:
//
//	maacs-server -addr 127.0.0.1:7744                        # net/rpc only
//	maacs-server -addr 127.0.0.1:7744 -http 127.0.0.1:7745   # + HTTP/JSON gateway
//	maacs-server -addr 127.0.0.1:7744 -fast                  # small test curve
//	maacs-server -addr 127.0.0.1:7744 -workers 8             # engine pool width
//	maacs-server -addr 127.0.0.1:7744 -batch-window 32       # streaming window
//
// The HTTP gateway additionally serves POST /owners/{id}/reencrypt/batch
// (many update-info sets streamed through bounded engine runs — the window
// caps how many fuse into one run, so huge batches never pin the server
// lock), GET /metrics (Prometheus text exposition of the cumulative and
// per-owner counters; ?format=json for the JSON body), and sets explicit
// read/write/idle timeouts so one slow client cannot pin a connection
// forever. The matching RPC methods are CloudServer.ReEncryptBatch and
// CloudServer.Metrics.
//
// Clients must be configured with the same pairing parameters (the built-in
// defaults on both sides match).
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"maacs/internal/cloud"
	"maacs/internal/core"
	"maacs/internal/engine"
	"maacs/internal/pairing"
)

// config carries the flag settings into run.
type config struct {
	addr, httpAddr    string
	fast              bool
	batchWindow       int
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7744", "net/rpc address to listen on")
	flag.StringVar(&cfg.httpAddr, "http", "", "optional HTTP/JSON gateway address (e.g. 127.0.0.1:7745)")
	flag.BoolVar(&cfg.fast, "fast", false, "use the small test curve")
	workers := flag.Int("workers", 0, "engine pool width (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.batchWindow, "batch-window", 64,
		"max update-info sets fused into one engine run per batch window (0 = whole batch)")
	flag.DurationVar(&cfg.readHeaderTimeout, "read-header-timeout", 5*time.Second,
		"http: max time to read a request's headers")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 2*time.Minute,
		"http: max time to read a whole request")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 10*time.Minute,
		"http: max time from end of header read to end of response write (covers long re-encryptions)")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute,
		"http: max keep-alive idle time")
	flag.Parse()
	engine.SetWorkers(*workers)
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "maacs-server:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	params := pairing.Default()
	if cfg.fast {
		params = pairing.Test()
	}
	sys := core.NewSystem(params)
	server := cloud.NewServer(sys, cloud.NewAccounting())
	server.SetBatchWindow(cfg.batchWindow)
	listener, bound, err := cloud.ServeRPC(sys, server, cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("maacs-server: rpc listening on %s (|r|=%d bits, |q|=%d bits)\n",
		bound, params.R.BitLen(), params.Q.BitLen())

	var httpSrv *http.Server
	if cfg.httpAddr != "" {
		httpSrv = &http.Server{
			Addr:              cfg.httpAddr,
			Handler:           cloud.NewHTTPHandler(sys, server),
			ReadHeaderTimeout: cfg.readHeaderTimeout,
			ReadTimeout:       cfg.readTimeout,
			WriteTimeout:      cfg.writeTimeout,
			IdleTimeout:       cfg.idleTimeout,
		}
		go func() {
			fmt.Printf("maacs-server: http gateway on %s (batch window %d)\n", cfg.httpAddr, cfg.batchWindow)
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "maacs-server: http:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("maacs-server: shutting down")
	if httpSrv != nil {
		if err := httpSrv.Close(); err != nil {
			return err
		}
	}
	return listener.Close()
}
