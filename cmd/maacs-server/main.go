// Command maacs-server runs a standalone cloud storage server speaking the
// net/rpc protocol from internal/cloud. It holds no secret key material:
// it stores ciphertexts, serves downloads, and performs proxy
// re-encryption on request — the honest-but-curious server of the paper's
// system model.
//
// Usage:
//
//	maacs-server -addr 127.0.0.1:7744                        # net/rpc only
//	maacs-server -addr 127.0.0.1:7744 -http 127.0.0.1:7745   # + HTTP/JSON gateway
//	maacs-server -addr 127.0.0.1:7744 -fast                  # small test curve
//	maacs-server -addr 127.0.0.1:7744 -workers 8             # engine pool width
//
// The HTTP gateway additionally serves POST /owners/{id}/reencrypt/batch
// (many update-info sets fused into one engine run) and GET /metrics
// (cumulative server + engine counters); the matching RPC methods are
// CloudServer.ReEncryptBatch and CloudServer.Metrics.
//
// Clients must be configured with the same pairing parameters (the built-in
// defaults on both sides match).
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"

	"maacs/internal/cloud"
	"maacs/internal/core"
	"maacs/internal/engine"
	"maacs/internal/pairing"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7744", "net/rpc address to listen on")
	httpAddr := flag.String("http", "", "optional HTTP/JSON gateway address (e.g. 127.0.0.1:7745)")
	fast := flag.Bool("fast", false, "use the small test curve")
	workers := flag.Int("workers", 0, "engine pool width (0 = GOMAXPROCS)")
	flag.Parse()
	engine.SetWorkers(*workers)
	if err := run(*addr, *httpAddr, *fast); err != nil {
		fmt.Fprintln(os.Stderr, "maacs-server:", err)
		os.Exit(1)
	}
}

func run(addr, httpAddr string, fast bool) error {
	params := pairing.Default()
	if fast {
		params = pairing.Test()
	}
	sys := core.NewSystem(params)
	server := cloud.NewServer(sys, cloud.NewAccounting())
	listener, bound, err := cloud.ServeRPC(sys, server, addr)
	if err != nil {
		return err
	}
	fmt.Printf("maacs-server: rpc listening on %s (|r|=%d bits, |q|=%d bits)\n",
		bound, params.R.BitLen(), params.Q.BitLen())

	var httpSrv *http.Server
	if httpAddr != "" {
		httpSrv = &http.Server{Addr: httpAddr, Handler: cloud.NewHTTPHandler(sys, server)}
		go func() {
			fmt.Printf("maacs-server: http gateway on %s\n", httpAddr)
			if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "maacs-server: http:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("maacs-server: shutting down")
	if httpSrv != nil {
		if err := httpSrv.Close(); err != nil {
			return err
		}
	}
	return listener.Close()
}
