package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"maacs/internal/core"
	"maacs/internal/pairing"
	"maacs/internal/wire"
)

// store lays out and loads the on-disk state directory.
type store struct {
	dir    string
	params *pairing.Params
	sys    *core.System
}

const (
	paramsFile = "params"
	caFile     = "ca.state"
	aaDir      = "aa"
	ownerDir   = "owners"
	userDir    = "users"
	keyDir     = "keys"
)

// encMagic heads the hybrid container files produced by `maacs encrypt`.
const encMagic = "maacs-container-v1"

// openStore loads the params file and prepares the directory handles.
func openStore(dir string) (*store, error) {
	raw, err := os.ReadFile(filepath.Join(dir, paramsFile))
	if err != nil {
		return nil, fmt.Errorf("open state dir (run `maacs init` first?): %w", err)
	}
	fields := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(fields) != 5 {
		return nil, fmt.Errorf("params file must have 5 lines, got %d", len(fields))
	}
	p, err := pairing.NewParams(fields[0], fields[1], fields[2], fields[3], fields[4])
	if err != nil {
		return nil, fmt.Errorf("params file: %w", err)
	}
	return &store{dir: dir, params: p, sys: core.NewSystem(p)}, nil
}

// initStore creates the directory layout and writes the params file.
func initStore(dir string, p *pairing.Params) (*store, error) {
	for _, sub := range []string{"", aaDir, ownerDir, userDir, keyDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	q, r, h, gx, gy := p.Export()
	content := strings.Join([]string{q, r, h, gx, gy}, "\n") + "\n"
	if err := os.WriteFile(filepath.Join(dir, paramsFile), []byte(content), 0o644); err != nil {
		return nil, err
	}
	sys := core.NewSystem(p)
	s := &store{dir: dir, params: p, sys: sys}
	return s, s.saveCA(core.NewCA(sys))
}

func (s *store) path(parts ...string) string {
	return filepath.Join(append([]string{s.dir}, parts...)...)
}

func (s *store) loadCA() (*core.CA, error) {
	raw, err := os.ReadFile(s.path(caFile))
	if err != nil {
		return nil, fmt.Errorf("load CA: %w", err)
	}
	return core.RestoreCA(s.sys, raw)
}

func (s *store) saveCA(ca *core.CA) error {
	return os.WriteFile(s.path(caFile), ca.ExportState(), 0o600)
}

func (s *store) loadAA(aid string) (*core.AA, error) {
	raw, err := os.ReadFile(s.path(aaDir, aid+".state"))
	if err != nil {
		return nil, fmt.Errorf("load authority %q: %w", aid, err)
	}
	return core.RestoreAA(s.sys, raw)
}

func (s *store) saveAA(aa *core.AA) error {
	return os.WriteFile(s.path(aaDir, aa.AID()+".state"), aa.ExportState(), 0o600)
}

func (s *store) listAAs() ([]string, error) {
	entries, err := os.ReadDir(s.path(aaDir))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".state"); ok {
			out = append(out, name)
		}
	}
	return out, nil
}

func (s *store) loadOwner(id string) (*core.Owner, error) {
	raw, err := os.ReadFile(s.path(ownerDir, id+".state"))
	if err != nil {
		return nil, fmt.Errorf("load owner %q: %w", id, err)
	}
	owner, err := core.RestoreOwner(s.sys, raw)
	if err != nil {
		return nil, err
	}
	// Public keys are not part of owner state: refresh from the authorities.
	aids, err := s.listAAs()
	if err != nil {
		return nil, err
	}
	for _, aid := range aids {
		aa, err := s.loadAA(aid)
		if err != nil {
			return nil, err
		}
		owner.InstallPublicKeys(aa.PublicKeys())
	}
	return owner, nil
}

func (s *store) saveOwner(o *core.Owner) error {
	return os.WriteFile(s.path(ownerDir, o.ID()+".state"), o.ExportState(), 0o600)
}

func (s *store) listOwners() ([]string, error) {
	entries, err := os.ReadDir(s.path(ownerDir))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".state"); ok {
			out = append(out, name)
		}
	}
	return out, nil
}

func (s *store) loadUserPK(uid string) (*core.UserPublicKey, error) {
	raw, err := os.ReadFile(s.path(userDir, uid+".pk"))
	if err != nil {
		return nil, fmt.Errorf("load user %q: %w", uid, err)
	}
	return core.UnmarshalUserPublicKey(s.params, raw)
}

func (s *store) saveUserPK(pk *core.UserPublicKey) error {
	return os.WriteFile(s.path(userDir, pk.UID+".pk"), pk.Marshal(), 0o644)
}

// keyFileName names a secret-key file; UIDs/AIDs/owner IDs with '@' or path
// separators are rejected at creation time.
func keyFileName(uid, aid, ownerID string) string {
	return uid + "@" + aid + "@" + ownerID + ".sk"
}

func (s *store) loadKey(uid, aid, ownerID string) (*core.SecretKey, error) {
	raw, err := os.ReadFile(s.path(keyDir, keyFileName(uid, aid, ownerID)))
	if err != nil {
		return nil, fmt.Errorf("load key: %w", err)
	}
	return core.UnmarshalSecretKey(s.params, raw)
}

func (s *store) saveKey(sk *core.SecretKey) error {
	return os.WriteFile(s.path(keyDir, keyFileName(sk.UID, sk.AID, sk.OwnerID)), sk.Marshal(), 0o600)
}

// listKeys returns the decoded secret keys matching the optional filters
// (empty string = any).
func (s *store) listKeys(uid, aid, ownerID string) ([]*core.SecretKey, error) {
	entries, err := os.ReadDir(s.path(keyDir))
	if err != nil {
		return nil, err
	}
	var out []*core.SecretKey
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".sk")
		if !ok {
			continue
		}
		parts := strings.Split(name, "@")
		if len(parts) != 3 {
			continue
		}
		if (uid != "" && parts[0] != uid) || (aid != "" && parts[1] != aid) || (ownerID != "" && parts[2] != ownerID) {
			continue
		}
		sk, err := s.loadKey(parts[0], parts[1], parts[2])
		if err != nil {
			return nil, err
		}
		out = append(out, sk)
	}
	return out, nil
}

// container is the hybrid .enc file: the CP-ABE ciphertext of the content
// key plus the AES-GCM payload.
type container struct {
	CT     *core.Ciphertext
	Sealed []byte
}

func (s *store) writeContainer(path string, c *container) error {
	var e wire.Encoder
	e.String(encMagic)
	e.Blob(c.CT.Marshal())
	e.Blob(c.Sealed)
	return os.WriteFile(path, e.Bytes(), 0o644)
}

func (s *store) readContainer(path string) (*container, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(raw)
	if magic := d.String(); magic != encMagic {
		return nil, fmt.Errorf("%s: not a maacs container (magic %q)", path, magic)
	}
	ctRaw := d.Blob()
	sealed := d.Blob()
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	ct, err := core.UnmarshalCiphertext(s.params, ctRaw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &container{CT: ct, Sealed: append([]byte(nil), sealed...)}, nil
}

// listContainers finds every *.enc file directly under the state dir.
func (s *store) listContainers() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".enc") {
			out = append(out, s.path(e.Name()))
		}
	}
	return out, nil
}

// validID rejects identifiers that would break the file layout.
func validID(id string) error {
	if id == "" {
		return fmt.Errorf("empty identifier")
	}
	if strings.ContainsAny(id, "@/\\:") {
		return fmt.Errorf("identifier %q must not contain '@', ':', or path separators", id)
	}
	return nil
}
