package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLIDecryptUnknownUser(t *testing.T) {
	dir := setupCLI(t)
	plain := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	enc := filepath.Join(dir, "e.enc")
	cli(t, dir, "encrypt", "-owner", "hospital", "-policy", "med:doctor", "-in", plain, "-out", enc)
	cliErr(t, dir, "decrypt", "-uid", "ghost", "-in", enc)
}

func TestCLIKeygenUnknownParties(t *testing.T) {
	dir := setupCLI(t)
	cliErr(t, dir, "keygen", "-uid", "ghost", "-aid", "med", "-owner", "hospital", "-attrs", "doctor")
	cliErr(t, dir, "keygen", "-uid", "alice", "-aid", "ghost", "-owner", "hospital", "-attrs", "doctor")
	cliErr(t, dir, "keygen", "-uid", "alice", "-aid", "med", "-owner", "ghost", "-attrs", "doctor")
	cliErr(t, dir, "keygen", "-uid", "alice", "-aid", "med", "-owner", "hospital", "-attrs", "wizard")
}

func TestCLIEncryptValidation(t *testing.T) {
	dir := setupCLI(t)
	// Missing required flags.
	cliErr(t, dir, "encrypt", "-owner", "hospital")
	// Unknown policy attribute.
	plain := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cliErr(t, dir, "encrypt", "-owner", "hospital", "-policy", "med:wizard", "-in", plain,
		"-out", filepath.Join(dir, "x.enc"))
	// Missing input file.
	cliErr(t, dir, "encrypt", "-owner", "hospital", "-policy", "med:doctor",
		"-in", filepath.Join(dir, "nope.txt"), "-out", filepath.Join(dir, "x.enc"))
}

func TestCLIInspectRejectsNonContainer(t *testing.T) {
	dir := setupCLI(t)
	junk := filepath.Join(dir, "junk.enc")
	if err := os.WriteFile(junk, []byte("not a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	cliErr(t, dir, "inspect", "-in", junk)
}

func TestCLIRevokeValidation(t *testing.T) {
	dir := setupCLI(t)
	cliErr(t, dir, "revoke", "-aid", "med", "-uid", "alice") // missing -attr
	cliErr(t, dir, "revoke", "-aid", "ghost", "-uid", "alice", "-attr", "doctor")
	cliErr(t, dir, "revoke", "-aid", "med", "-uid", "ghost", "-attr", "doctor")
}

func TestCLIDecryptRevokedKeyFileIsCurrentButUseless(t *testing.T) {
	// After revoke, the revoked user's key file is rewritten at the new
	// version with the reduced set — decryption fails on policy, not on
	// version (the file stays usable for the attributes that remain).
	dir := setupCLI(t)
	plain := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	enc := filepath.Join(dir, "e.enc")
	cli(t, dir, "encrypt", "-owner", "hospital", "-policy", "med:doctor", "-in", plain, "-out", enc)
	cli(t, dir, "revoke", "-aid", "med", "-uid", "alice", "-attr", "doctor")
	err := cliErr(t, dir, "decrypt", "-uid", "alice", "-in", enc)
	if err == nil || !strings.Contains(err.Error(), "satisfy") {
		t.Fatalf("expected policy failure, got: %v", err)
	}
}
