package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cli runs a subcommand against the test state dir and returns its output.
func cli(t *testing.T, dir string, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	full := append(args[:1:1], append([]string{"-dir", dir}, args[1:]...)...)
	if err := run(full, &buf); err != nil {
		t.Fatalf("maacs %s: %v", strings.Join(args, " "), err)
	}
	return buf.String()
}

// cliErr runs a subcommand expecting failure.
func cliErr(t *testing.T, dir string, args ...string) error {
	t.Helper()
	var buf bytes.Buffer
	full := append(args[:1:1], append([]string{"-dir", dir}, args[1:]...)...)
	err := run(full, &buf)
	if err == nil {
		t.Fatalf("maacs %s: expected error", strings.Join(args, " "))
	}
	return err
}

// setupCLI initializes a full scenario: one AA, one owner, two users.
func setupCLI(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cli(t, dir, "init", "-fast")
	cli(t, dir, "new-aa", "-aid", "med", "-attrs", "doctor,nurse")
	cli(t, dir, "new-owner", "-id", "hospital")
	cli(t, dir, "new-user", "-uid", "alice")
	cli(t, dir, "new-user", "-uid", "bob")
	cli(t, dir, "keygen", "-uid", "alice", "-aid", "med", "-owner", "hospital", "-attrs", "doctor")
	cli(t, dir, "keygen", "-uid", "bob", "-aid", "med", "-owner", "hospital", "-attrs", "doctor,nurse")
	return dir
}

func TestCLIEncryptDecryptRoundTrip(t *testing.T) {
	dir := setupCLI(t)
	plain := filepath.Join(dir, "plain.txt")
	if err := os.WriteFile(plain, []byte("attack at dawn"), 0o644); err != nil {
		t.Fatal(err)
	}
	enc := filepath.Join(dir, "secret.enc")
	cli(t, dir, "encrypt", "-owner", "hospital", "-policy", "med:doctor", "-in", plain, "-out", enc)

	outFile := filepath.Join(dir, "plain.out")
	cli(t, dir, "decrypt", "-uid", "alice", "-in", enc, "-out", outFile)
	got, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "attack at dawn" {
		t.Fatalf("got %q", got)
	}

	// Decrypt to stdout too.
	if out := cli(t, dir, "decrypt", "-uid", "bob", "-in", enc); out != "attack at dawn" {
		t.Fatalf("stdout decrypt got %q", out)
	}
}

func TestCLIDecryptDeniedWithoutAttribute(t *testing.T) {
	dir := setupCLI(t)
	plain := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	enc := filepath.Join(dir, "nurse-only.enc")
	cli(t, dir, "encrypt", "-owner", "hospital", "-policy", "med:nurse", "-in", plain, "-out", enc)
	// alice holds only doctor.
	cliErr(t, dir, "decrypt", "-uid", "alice", "-in", enc)
}

func TestCLIRevocationEndToEnd(t *testing.T) {
	dir := setupCLI(t)
	plain := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(plain, []byte("classified"), 0o644); err != nil {
		t.Fatal(err)
	}
	enc := filepath.Join(dir, "doc.enc")
	cli(t, dir, "encrypt", "-owner", "hospital", "-policy", "med:doctor", "-in", plain, "-out", enc)

	// Both read it before revocation.
	if out := cli(t, dir, "decrypt", "-uid", "alice", "-in", enc); out != "classified" {
		t.Fatal("alice cannot read before revocation")
	}

	out := cli(t, dir, "revoke", "-aid", "med", "-uid", "alice", "-attr", "doctor")
	if !strings.Contains(out, "version 0 → 1") || !strings.Contains(out, "1 container(s) re-encrypted") {
		t.Fatalf("unexpected revoke output: %s", out)
	}

	// Alice (lost doctor) is denied; bob (updated) still reads.
	cliErr(t, dir, "decrypt", "-uid", "alice", "-in", enc)
	if got := cli(t, dir, "decrypt", "-uid", "bob", "-in", enc); got != "classified" {
		t.Fatalf("bob after revocation got %q", got)
	}

	// New encryptions are at version 1 and behave the same.
	enc2 := filepath.Join(dir, "doc2.enc")
	cli(t, dir, "encrypt", "-owner", "hospital", "-policy", "med:doctor", "-in", plain, "-out", enc2)
	cliErr(t, dir, "decrypt", "-uid", "alice", "-in", enc2)
	if got := cli(t, dir, "decrypt", "-uid", "bob", "-in", enc2); got != "classified" {
		t.Fatalf("bob on new data got %q", got)
	}

	// Alice's nurse-side access (she had none) — verify her reduced keyfile
	// exists at the new version with no attributes.
	inspect := cli(t, dir, "inspect", "-in", enc)
	if !strings.Contains(inspect, "med at version 1") {
		t.Fatalf("inspect shows wrong version:\n%s", inspect)
	}
}

func TestCLIPartialRevocationKeepsOtherAttr(t *testing.T) {
	dir := setupCLI(t)
	plain := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(plain, []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	encN := filepath.Join(dir, "n.enc")
	cli(t, dir, "encrypt", "-owner", "hospital", "-policy", "med:nurse", "-in", plain, "-out", encN)
	// bob holds doctor+nurse; revoke only his doctor.
	cli(t, dir, "revoke", "-aid", "med", "-uid", "bob", "-attr", "doctor")
	if got := cli(t, dir, "decrypt", "-uid", "bob", "-in", encN); got != "v" {
		t.Fatalf("bob lost nurse access: %q", got)
	}
	encD := filepath.Join(dir, "d.enc")
	cli(t, dir, "encrypt", "-owner", "hospital", "-policy", "med:doctor", "-in", plain, "-out", encD)
	cliErr(t, dir, "decrypt", "-uid", "bob", "-in", encD)
}

func TestCLIValidation(t *testing.T) {
	dir := t.TempDir()
	// Commands before init fail cleanly.
	cliErr(t, dir, "new-user", "-uid", "alice")
	cli(t, dir, "init", "-fast")
	// Double init refused.
	cliErr(t, dir, "init", "-fast")
	// Bad identifiers refused.
	cliErr(t, dir, "new-user", "-uid", "a@b")
	cliErr(t, dir, "new-aa", "-aid", "x/y", "-attrs", "a")
	cliErr(t, dir, "new-aa", "-aid", "ok") // missing attrs
	// Unknown command.
	if err := run([]string{"frobnicate"}, os.Stdout); err == nil {
		t.Fatal("unknown command accepted")
	}
	// Duplicate user.
	cli(t, dir, "new-user", "-uid", "alice")
	cliErr(t, dir, "new-user", "-uid", "alice")
}

func TestCLIList(t *testing.T) {
	dir := setupCLI(t)
	plain := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cli(t, dir, "encrypt", "-owner", "hospital", "-policy", "med:doctor", "-in", plain, "-out", filepath.Join(dir, "a.enc"))
	out := cli(t, dir, "list")
	for _, want := range []string{
		"authorities (1):", "med", "doctor, nurse",
		"owners (1):", "hospital", "1 encryption record(s)",
		"issued keys (2):", "alice@med@hospital",
		"containers (1):", `policy "med:doctor"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIInspect(t *testing.T) {
	dir := setupCLI(t)
	plain := filepath.Join(dir, "p.txt")
	if err := os.WriteFile(plain, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	enc := filepath.Join(dir, "x.enc")
	cli(t, dir, "encrypt", "-owner", "hospital", "-policy", "med:doctor OR med:nurse", "-in", plain, "-out", enc)
	out := cli(t, dir, "inspect", "-in", enc)
	for _, want := range []string{"owner:         hospital", "med:doctor OR med:nurse", "rows:          2", "med at version 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
}
