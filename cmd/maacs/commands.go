package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"maacs/internal/core"
	"maacs/internal/hybrid"
	"maacs/internal/pairing"
)

// run dispatches a subcommand. It is the testable entry point behind main.
func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "init":
		return cmdInit(rest, out)
	case "new-user":
		return cmdNewUser(rest, out)
	case "new-aa":
		return cmdNewAA(rest, out)
	case "new-owner":
		return cmdNewOwner(rest, out)
	case "keygen":
		return cmdKeygen(rest, out)
	case "encrypt":
		return cmdEncrypt(rest, out)
	case "decrypt":
		return cmdDecrypt(rest, out)
	case "revoke":
		return cmdRevoke(rest, out)
	case "inspect":
		return cmdInspect(rest, out)
	case "list":
		return cmdList(rest, out)
	default:
		return fmt.Errorf("unknown command %q: %w", cmd, usageError())
	}
}

func usageError() error {
	return fmt.Errorf("usage: maacs <init|new-user|new-aa|new-owner|keygen|encrypt|decrypt|revoke|inspect|list> [flags]")
}

func cmdList(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	dir := dirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "state dir %s (|r|=%d bits, |q|=%d bits)\n", *dir, s.params.R.BitLen(), s.params.Q.BitLen())

	aids, err := s.listAAs()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "authorities (%d):\n", len(aids))
	for _, aid := range aids {
		aa, err := s.loadAA(aid)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-12s version %d, attributes: %s\n",
			aid, aa.Version(), strings.Join(aa.AttributeNames(), ", "))
	}

	owners, err := s.listOwners()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "owners (%d):\n", len(owners))
	for _, id := range owners {
		owner, err := s.loadOwner(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-12s %d encryption record(s)\n", id, owner.RecordCount())
	}

	keys, err := s.listKeys("", "", "")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "issued keys (%d):\n", len(keys))
	for _, sk := range keys {
		fmt.Fprintf(out, "  %s@%s@%s version %d, %d attribute(s)\n",
			sk.UID, sk.AID, sk.OwnerID, sk.Version, len(sk.KAttr))
	}

	containers, err := s.listContainers()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "containers (%d):\n", len(containers))
	for _, path := range containers {
		c, err := s.readContainer(path)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %s policy %q\n", path, c.CT.Policy)
	}
	return nil
}

func dirFlag(fs *flag.FlagSet) *string {
	return fs.String("dir", "maacs-state", "state directory")
}

func cmdInit(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("init", flag.ContinueOnError)
	dir := dirFlag(fs)
	fast := fs.Bool("fast", false, "use the small (insecure) test curve")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := pairing.Default()
	if *fast {
		p = pairing.Test()
	}
	if _, err := os.Stat(*dir + "/" + paramsFile); err == nil {
		return fmt.Errorf("state dir %q already initialized", *dir)
	}
	if _, err := initStore(*dir, p); err != nil {
		return err
	}
	fmt.Fprintf(out, "initialized %s (|r|=%d bits, |q|=%d bits)\n", *dir, p.R.BitLen(), p.Q.BitLen())
	return nil
}

func cmdNewUser(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("new-user", flag.ContinueOnError)
	dir := dirFlag(fs)
	uid := fs.String("uid", "", "user identifier")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validID(*uid); err != nil {
		return err
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	ca, err := s.loadCA()
	if err != nil {
		return err
	}
	pk, err := ca.RegisterUser(*uid, rand.Reader)
	if err != nil {
		return err
	}
	if err := s.saveCA(ca); err != nil {
		return err
	}
	if err := s.saveUserPK(pk); err != nil {
		return err
	}
	fmt.Fprintf(out, "registered user %s (public key: users/%s.pk)\n", *uid, *uid)
	return nil
}

func cmdNewAA(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("new-aa", flag.ContinueOnError)
	dir := dirFlag(fs)
	aid := fs.String("aid", "", "authority identifier")
	attrs := fs.String("attrs", "", "comma-separated attribute names")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validID(*aid); err != nil {
		return err
	}
	names := splitList(*attrs)
	if len(names) == 0 {
		return fmt.Errorf("-attrs required")
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	ca, err := s.loadCA()
	if err != nil {
		return err
	}
	if err := ca.RegisterAA(*aid); err != nil {
		return err
	}
	aa, err := core.NewAA(s.sys, *aid, names, rand.Reader)
	if err != nil {
		return err
	}
	if err := s.saveCA(ca); err != nil {
		return err
	}
	if err := s.saveAA(aa); err != nil {
		return err
	}
	fmt.Fprintf(out, "created authority %s managing %d attributes\n", *aid, len(names))
	return nil
}

func cmdNewOwner(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("new-owner", flag.ContinueOnError)
	dir := dirFlag(fs)
	id := fs.String("id", "", "owner identifier")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validID(*id); err != nil {
		return err
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	owner, err := core.NewOwner(s.sys, *id, rand.Reader)
	if err != nil {
		return err
	}
	if err := s.saveOwner(owner); err != nil {
		return err
	}
	fmt.Fprintf(out, "created owner %s\n", *id)
	return nil
}

func cmdKeygen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("keygen", flag.ContinueOnError)
	dir := dirFlag(fs)
	uid := fs.String("uid", "", "user identifier")
	aid := fs.String("aid", "", "authority identifier")
	ownerID := fs.String("owner", "", "owner identifier the key is bound to")
	attrs := fs.String("attrs", "", "comma-separated local attribute names (may be empty for a base key)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, id := range []string{*uid, *aid, *ownerID} {
		if err := validID(id); err != nil {
			return err
		}
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	pk, err := s.loadUserPK(*uid)
	if err != nil {
		return err
	}
	aa, err := s.loadAA(*aid)
	if err != nil {
		return err
	}
	owner, err := s.loadOwner(*ownerID)
	if err != nil {
		return err
	}
	sk, err := aa.KeyGen(pk, owner.SecretKeyForAAs(), splitList(*attrs))
	if err != nil {
		return err
	}
	if err := s.saveKey(sk); err != nil {
		return err
	}
	fmt.Fprintf(out, "issued key keys/%s (version %d, %d attributes)\n",
		keyFileName(*uid, *aid, *ownerID), sk.Version, len(sk.KAttr))
	return nil
}

func cmdEncrypt(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("encrypt", flag.ContinueOnError)
	dir := dirFlag(fs)
	ownerID := fs.String("owner", "", "owner identifier")
	policy := fs.String("policy", "", "access policy over qualified attributes")
	in := fs.String("in", "", "plaintext file")
	outPath := fs.String("out", "", "container file to write (*.enc)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *policy == "" || *in == "" || *outPath == "" {
		return fmt.Errorf("-policy, -in and -out are required")
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	owner, err := s.loadOwner(*ownerID)
	if err != nil {
		return err
	}
	plaintext, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	key, err := hybrid.NewContentKey(s.params, rand.Reader)
	if err != nil {
		return err
	}
	sealed, err := key.Seal(plaintext, rand.Reader)
	if err != nil {
		return err
	}
	ct, err := owner.Encrypt(key.Element, *policy, rand.Reader)
	if err != nil {
		return err
	}
	if err := s.writeContainer(*outPath, &container{CT: ct, Sealed: sealed}); err != nil {
		return err
	}
	// The encryption record (ciphertext ID → s) must survive for revocation.
	if err := s.saveOwner(owner); err != nil {
		return err
	}
	fmt.Fprintf(out, "encrypted %d bytes under %q → %s (ciphertext %s)\n",
		len(plaintext), *policy, *outPath, ct.ID[:8])
	return nil
}

func cmdDecrypt(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("decrypt", flag.ContinueOnError)
	dir := dirFlag(fs)
	uid := fs.String("uid", "", "user identifier")
	in := fs.String("in", "", "container file")
	outPath := fs.String("out", "", "plaintext file to write (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validID(*uid); err != nil {
		return err
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	pk, err := s.loadUserPK(*uid)
	if err != nil {
		return err
	}
	c, err := s.readContainer(*in)
	if err != nil {
		return err
	}
	keys, err := s.listKeys(*uid, "", c.CT.OwnerID)
	if err != nil {
		return err
	}
	byAA := make(map[string]*core.SecretKey, len(keys))
	for _, sk := range keys {
		byAA[sk.AID] = sk
	}
	el, err := core.Decrypt(s.sys, c.CT, pk, byAA)
	if err != nil {
		return err
	}
	key := &hybrid.ContentKey{Element: el}
	plaintext, err := key.Open(c.Sealed)
	if err != nil {
		return err
	}
	if *outPath == "" {
		_, err = out.Write(plaintext)
		return err
	}
	if err := os.WriteFile(*outPath, plaintext, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "decrypted %d bytes → %s\n", len(plaintext), *outPath)
	return nil
}

func cmdRevoke(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("revoke", flag.ContinueOnError)
	dir := dirFlag(fs)
	aid := fs.String("aid", "", "authority identifier")
	uid := fs.String("uid", "", "user whose attribute is revoked")
	attr := fs.String("attr", "", "local attribute name to revoke")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, id := range []string{*aid, *uid} {
		if err := validID(id); err != nil {
			return err
		}
	}
	if *attr == "" {
		return fmt.Errorf("-attr required")
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	aa, err := s.loadAA(*aid)
	if err != nil {
		return err
	}
	pk, err := s.loadUserPK(*uid)
	if err != nil {
		return err
	}

	// Phase 1, step 1: new version key.
	fromV, toV, err := aa.Rekey(rand.Reader)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "authority %s: version %d → %d\n", *aid, fromV, toV)

	owners, err := s.listOwners()
	if err != nil {
		return err
	}
	containers, err := s.listContainers()
	if err != nil {
		return err
	}
	usersUpdated, ctsReencrypted := 0, 0
	for _, ownerID := range owners {
		owner, err := s.loadOwner(ownerID)
		if err != nil {
			return err
		}
		uk, err := aa.UpdateKeyFor(owner.SecretKeyForAAs(), fromV)
		if err != nil {
			return err
		}

		// Step 2: fresh key over the reduced set S̃ for the revoked user.
		oldKeys, err := s.listKeys(*uid, *aid, ownerID)
		if err != nil {
			return err
		}
		if len(oldKeys) == 1 {
			var reduced []string
			for q := range oldKeys[0].KAttr {
				a, err := core.ParseAttribute(q)
				if err != nil {
					return err
				}
				if a.Name != *attr {
					reduced = append(reduced, a.Name)
				}
			}
			newSK, err := aa.KeyGen(pk, owner.SecretKeyForAAs(), reduced)
			if err != nil {
				return err
			}
			if err := s.saveKey(newSK); err != nil {
				return err
			}
		}

		// Step 3: update keys for every other holder's key files.
		others, err := s.listKeys("", *aid, ownerID)
		if err != nil {
			return err
		}
		for _, sk := range others {
			if sk.UID == *uid || sk.Version != fromV {
				continue
			}
			updated, err := core.UpdateSecretKey(sk, uk)
			if err != nil {
				return err
			}
			if err := s.saveKey(updated); err != nil {
				return err
			}
			usersUpdated++
		}

		// Step 4 + Phase 2: owner public-key update, update information and
		// re-encryption of every affected container.
		var cts []*core.Ciphertext
		var paths []string
		var conts []*container
		for _, path := range containers {
			c, err := s.readContainer(path)
			if err != nil {
				return err
			}
			if c.CT.OwnerID != ownerID {
				continue
			}
			cts = append(cts, c.CT)
			paths = append(paths, path)
			conts = append(conts, c)
		}
		uis, err := owner.RevocationUpdate(uk, cts)
		if err != nil {
			return err
		}
		for i, ui := range uis {
			if ui == nil {
				continue
			}
			reenc, _, err := core.ReEncrypt(s.sys, cts[i], ui, uk)
			if err != nil {
				return err
			}
			conts[i].CT = reenc
			if err := s.writeContainer(paths[i], conts[i]); err != nil {
				return err
			}
			ctsReencrypted++
		}
		if err := s.saveOwner(owner); err != nil {
			return err
		}
	}
	if err := s.saveAA(aa); err != nil {
		return err
	}
	fmt.Fprintf(out, "revoked %s:%s from %s — %d key file(s) updated, %d container(s) re-encrypted\n",
		*aid, *attr, *uid, usersUpdated, ctsReencrypted)
	return nil
}

func cmdInspect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	dir := dirFlag(fs)
	in := fs.String("in", "", "container file to inspect")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := openStore(*dir)
	if err != nil {
		return err
	}
	c, err := s.readContainer(*in)
	if err != nil {
		return err
	}
	aids, err := c.CT.InvolvedAuthorities()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "container %s\n", *in)
	fmt.Fprintf(out, "  ciphertext id: %s\n", c.CT.ID)
	fmt.Fprintf(out, "  owner:         %s\n", c.CT.OwnerID)
	fmt.Fprintf(out, "  policy:        %s\n", c.CT.Policy)
	fmt.Fprintf(out, "  rows:          %d\n", len(c.CT.Rows))
	fmt.Fprintf(out, "  authorities:   %s\n", strings.Join(aids, ", "))
	for _, aid := range aids {
		fmt.Fprintf(out, "    %s at version %d\n", aid, c.CT.Versions[aid])
	}
	fmt.Fprintf(out, "  abe payload:   %d bytes\n", c.CT.Size(s.params))
	fmt.Fprintf(out, "  sealed data:   %d bytes\n", len(c.Sealed))
	sets, truncated, err := c.CT.MinimalAuthorizedSets(8)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  authorized by:\n")
	for _, set := range sets {
		fmt.Fprintf(out, "    %s\n", strings.Join(set, " + "))
	}
	if truncated {
		fmt.Fprintln(out, "    … (more)")
	}
	return nil
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}
