// Command maacs is a file-based operator tool for the multi-authority
// CP-ABE system: it keeps CA/authority/owner state on disk and performs key
// generation, hybrid encryption/decryption and full attribute revocation
// over files.
//
// Workflow:
//
//	maacs init -dir st -fast
//	maacs new-aa -dir st -aid med -attrs doctor,nurse
//	maacs new-owner -dir st -id hospital
//	maacs new-user -dir st -uid alice
//	maacs keygen -dir st -uid alice -aid med -owner hospital -attrs doctor
//	maacs encrypt -dir st -owner hospital -policy "med:doctor" -in plain.txt -out data.enc
//	maacs decrypt -dir st -uid alice -in data.enc -out plain.out
//	maacs revoke -dir st -aid med -uid alice -attr doctor
//	maacs inspect -dir st -in data.enc
//
// State files under -dir: params, ca.state, aa/<AID>.state,
// owners/<ID>.state, users/<UID>.pk, keys/<UID>@<AID>@<OWNER>.sk, and any
// *.enc containers the operator produces. Revocation rewrites the affected
// key files and re-encrypts every container in the directory.
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "maacs:", err)
		os.Exit(1)
	}
}
