// Package maacs is a Go implementation of multi-authority attribute-based
// access control for cloud storage, reproducing Yang & Jia, "Attribute-based
// Access Control for Multi-Authority Systems in Cloud Storage" (ICDCS 2012).
//
// The package offers two levels of API:
//
//   - A deployment-level API (Environment, Authority, Owner, User, the cloud
//     Server) that wires the paper's Fig. 1 system model: register
//     authorities and users, upload records split into policy-guarded
//     components (Fig. 2), download with fine-grained access, and revoke
//     attributes end to end (key update + server-side proxy re-encryption).
//
//   - The raw scheme primitives (CA, AA, DataOwner, Ciphertext, Decrypt,
//     ReEncrypt, …) for callers that want to drive the eight algorithms of
//     the paper directly.
//
// Quick start:
//
//	env := maacs.NewEnvironment()
//	med, _ := env.AddAuthority("med", []string{"doctor", "nurse"})
//	hospital, _ := env.AddOwner("hospital")
//	alice, _ := env.AddUser("alice")
//	med.GrantAttributes(alice, []string{"doctor"})
//	hospital.Upload("rec1", []maacs.UploadComponent{
//	    {Label: "diagnosis", Data: data, Policy: "med:doctor"},
//	})
//	plaintext, err := alice.Download("rec1", "diagnosis")
//
// The cryptography (a Type-A symmetric pairing, LSSS policies, the
// multi-authority CP-ABE with revocation, and the Lewko–Waters, Waters and
// Hur–Noh baselines) is implemented from scratch on the Go standard library;
// see DESIGN.md. It is a research reproduction and is NOT constant-time —
// do not protect real data with it.
package maacs

import (
	"crypto/rand"

	"maacs/internal/cloud"
	"maacs/internal/core"
	"maacs/internal/pairing"
)

// Deployment-level types (the Fig. 1 system model).
type (
	// Environment is a wired deployment: CA, authorities, owners, users and
	// the cloud server, with per-channel communication accounting.
	Environment = cloud.Env
	// Authority is a deployed attribute authority.
	Authority = cloud.Authority
	// Owner is a deployed data owner.
	Owner = cloud.OwnerClient
	// User is a deployed data consumer.
	User = cloud.UserClient
	// Server is the cloud storage server.
	Server = cloud.Server
	// Record is a stored data record in the paper's Fig. 2 format.
	Record = cloud.Record
	// UploadComponent is one data component with its access policy.
	UploadComponent = cloud.UploadComponent
	// RevocationReport summarizes one end-to-end attribute revocation.
	RevocationReport = cloud.RevocationReport
	// Accounting meters bytes per communication channel (Table IV).
	Accounting = cloud.Accounting
)

// Scheme-level types (the paper's eight algorithms live on these).
type (
	// System carries the global bilinear-group parameters.
	System = core.System
	// CA is the certificate authority (global Setup).
	CA = core.CA
	// AA is a raw attribute authority (AAGen, KeyGen, ReKey).
	AA = core.AA
	// DataOwner is a raw data owner (OwnerGen, Encrypt, update info).
	DataOwner = core.Owner
	// Ciphertext is a CP-ABE ciphertext (of a content key).
	Ciphertext = core.Ciphertext
	// SecretKey is a user decryption key from one authority.
	SecretKey = core.SecretKey
	// UpdateKey carries (UK1, UK2) from one ReKey operation.
	UpdateKey = core.UpdateKey
	// UpdateInfo is the owner-generated re-encryption information.
	UpdateInfo = core.UpdateInfo
	// UserPublicKey is a user's global identity key PK_UID = g^u.
	UserPublicKey = core.UserPublicKey
	// Attribute is a qualified (AID, name) attribute.
	Attribute = core.Attribute
)

// Errors re-exported for matching with errors.Is.
var (
	// ErrNoAccess reports a failed download (policy not satisfied or keys
	// stale).
	ErrNoAccess = cloud.ErrNoAccess
	// ErrPolicyNotSatisfied reports a CP-ABE decryption the user's
	// attributes cannot perform.
	ErrPolicyNotSatisfied = core.ErrPolicyNotSatisfied
	// ErrVersionMismatch reports stale keys or ciphertexts after a
	// revocation.
	ErrVersionMismatch = core.ErrVersionMismatch
)

// NewEnvironment creates a deployment at the paper's security scale
// (160-bit group order, 512-bit base field — the PBC α-curve sizes used in
// the paper's evaluation).
func NewEnvironment() *Environment {
	return cloud.NewEnv(core.NewSystem(pairing.Default()), rand.Reader)
}

// NewDemoEnvironment creates a deployment over small, cryptographically
// worthless parameters that runs two orders of magnitude faster. Use it for
// demos and tests only.
func NewDemoEnvironment() *Environment {
	return cloud.NewEnv(core.NewSystem(pairing.Test()), rand.Reader)
}

// NewSystem returns the raw scheme-level system at paper scale, for callers
// driving the eight algorithms (core.Decrypt, core.ReEncrypt, …) directly.
func NewSystem() *System {
	return core.NewSystem(pairing.Default())
}
