module maacs

go 1.22
